/**
 * @file
 * Regenerates Table II: the evaluated BOOM core configuration, read
 * back from the model's actual configuration structures (so the
 * table can never drift from what the simulator runs).
 */

#include <iostream>

#include "bench_util.hpp"

using namespace cobra;

int
main()
{
    const sim::SimConfig cfg = sim::makeConfig(sim::Design::TageL);

    std::cout << "== Table II: Configuration of the evaluated core ==\n\n";
    TextTable t;
    t.addRow({"Unit", "Configuration"});

    auto row = [&t](const std::string& a, const std::string& b) {
        t.beginRow();
        t.cell(a);
        t.cell(b);
    };

    row("Frontend",
        std::to_string(cfg.frontend.fetchWidth * kInstBytes) +
            "-byte wide fetch");
    row("", std::to_string(cfg.backend.coreWidth) +
                "-wide decode/rename/commit");
    row("Execute", std::to_string(cfg.backend.robEntries) +
                       "-entry ROB");
    row("", std::to_string(cfg.backend.aluPorts + cfg.backend.memPorts +
                           cfg.backend.fpPorts) +
                " pipelines (" + std::to_string(cfg.backend.aluPorts) +
                " ALU, " + std::to_string(cfg.backend.memPorts) +
                " MEM, " + std::to_string(cfg.backend.fpPorts) + " FP)");
    row("", "3x " + std::to_string(cfg.backend.intIqEntries) +
                "-entry IQs (INT, MEM, FP)");
    row("Load-Store Unit",
        std::to_string(cfg.backend.ldqEntries) + "-entry LDQ, " +
            std::to_string(cfg.backend.stqEntries) + "-entry STQ");
    row("", std::to_string(cfg.backend.memPorts) + " LD/ST per cycle");
    row("L1 Caches",
        std::to_string(cfg.caches.l1i.ways) + "-way " +
            std::to_string(cfg.caches.l1i.sizeBytes / 1024) +
            " KB ICache and DCache");
    row("", "next-line prefetcher");
    row("L2 Cache", std::to_string(cfg.caches.l2.ways) + "-way " +
                        std::to_string(cfg.caches.l2.sizeBytes / 1024) +
                        " KB");
    row("L3 Cache",
        std::to_string(cfg.caches.l3.sizeBytes / 1024 / 1024) +
            " MB LLC model (stand-in for the FASED model)");
    row("Memory", "fixed " + std::to_string(cfg.caches.memLatency) +
                      "-cycle DRAM model (stand-in for FASED DDR3)");
    t.print(std::cout);

    std::cout << "\nBranch-prediction management structures:\n"
              << "  history file: " << cfg.bpu.historyFileEntries
              << " entries\n"
              << "  repair walk width: " << cfg.bpu.walkWidth
              << "/cycle, update width: " << cfg.bpu.updateWidth
              << "/cycle\n";
    return 0;
}
