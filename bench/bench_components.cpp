/**
 * @file
 * google-benchmark microbenchmarks: model-evaluation throughput of
 * the predictor sub-components and the full simulator (host-side
 * performance, not simulated metrics) — useful for keeping the
 * framework fast enough for the multi-billion-cycle studies the
 * paper's methodology implies.
 */

#include <benchmark/benchmark.h>

#include "components/bim.hpp"
#include "components/tage.hpp"
#include "program/workload.hpp"
#include "sim/presets.hpp"
#include "sim/simulator.hpp"

using namespace cobra;

namespace {

void
BM_HbimPredict(benchmark::State& state)
{
    comps::HbimParams p;
    p.sets = 4096;
    p.mode = comps::IndexMode::GshareHash;
    p.histBits = 12;
    p.latency = 2;
    p.fetchWidth = 4;
    comps::Hbim bim("BIM", p);
    HistoryRegister gh(64);
    Addr pc = 0x1'0000;
    for (auto _ : state) {
        bpu::PredictContext ctx;
        ctx.pc = pc;
        ctx.validSlots = 4;
        ctx.ghist = &gh;
        bpu::PredictionBundle b;
        b.width = 4;
        bpu::Metadata meta{};
        bim.predict(ctx, b, meta);
        benchmark::DoNotOptimize(b);
        pc += 16;
        gh.push(pc & 1);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HbimPredict);

void
BM_TagePredict(benchmark::State& state)
{
    comps::TageParams tp = comps::TageParams::tageL(4);
    comps::Tage tage("TAGE", tp);
    HistoryRegister gh(64);
    Addr pc = 0x1'0000;
    for (auto _ : state) {
        bpu::PredictContext ctx;
        ctx.pc = pc;
        ctx.validSlots = 4;
        ctx.ghist = &gh;
        bpu::PredictionBundle b;
        b.width = 4;
        bpu::Metadata meta{};
        tage.predict(ctx, b, meta);
        benchmark::DoNotOptimize(b);
        pc += 16;
        gh.push(pc & 1);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TagePredict);

void
BM_ComposedPipelineQuery(benchmark::State& state)
{
    const auto design = static_cast<sim::Design>(state.range(0));
    bpu::BpuConfig bc = sim::makeConfig(design).bpu;
    bpu::BranchPredictorUnit unit(sim::buildTopology(design), bc);
    Addr pc = 0x1'0000;
    for (auto _ : state) {
        bpu::QueryState q;
        unit.beginQuery(q, pc, 4);
        unit.stage(q, 1);
        unit.captureHistory(q);
        unit.stage(q, 2);
        auto b = unit.stage(q, 3);
        benchmark::DoNotOptimize(b);
        pc += 16;
    }
    state.SetItemsProcessed(state.iterations());
    state.SetLabel(sim::designName(design));
}
BENCHMARK(BM_ComposedPipelineQuery)
    ->Arg(static_cast<int>(sim::Design::Tourney))
    ->Arg(static_cast<int>(sim::Design::B2))
    ->Arg(static_cast<int>(sim::Design::TageL));

void
BM_SimulatorCycles(benchmark::State& state)
{
    const prog::Program p = prog::buildWorkload(
        prog::WorkloadLibrary::profile("x264"));
    sim::SimConfig cfg = sim::makeConfig(sim::Design::TageL);
    sim::Simulator s(p, sim::buildTopology(sim::Design::TageL), cfg);
    for (auto _ : state)
        s.tickOnce();
    state.SetItemsProcessed(state.iterations());
    state.SetLabel("simulated cycles per second");
}
BENCHMARK(BM_SimulatorCycles);

void
BM_OracleGeneration(benchmark::State& state)
{
    const prog::Program p = prog::buildWorkload(
        prog::WorkloadLibrary::profile("gcc"));
    exec::Oracle o(p);
    for (auto _ : state) {
        const auto& di = o.consume();
        benchmark::DoNotOptimize(di);
        o.retireUpTo(di.seq);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OracleGeneration);

} // namespace

BENCHMARK_MAIN();
