/**
 * @file
 * Shared helpers for the figure/table regeneration harnesses. Every
 * simulating harness queues its (design, workload, config) points on a
 * bench::Sweep, which runs them through the sim::SweepEngine thread
 * pool (--jobs via COBRA_JOBS) and emits a machine-readable copy of
 * the results to bench_results/<name>.json next to the text tables.
 */

#ifndef COBRA_BENCH_BENCH_UTIL_HPP
#define COBRA_BENCH_BENCH_UTIL_HPP

#include <cstdint>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "program/workload.hpp"
#include "sim/presets.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"

namespace cobra::bench {

/** Standard measurement lengths (override with COBRA_FAST=1). */
struct RunScale
{
    std::uint64_t warmup = 120'000;
    std::uint64_t measure = 400'000;

    static RunScale
    fromEnv()
    {
        RunScale s;
        const char* fast = std::getenv("COBRA_FAST");
        if (fast != nullptr && fast[0] == '1') {
            s.warmup = 20'000;
            s.measure = 60'000;
        }
        return s;
    }
};

/** Cache of built workloads (kept as an alias for older call sites). */
using WorkloadCache = prog::WorkloadCache;

/** Print a PASS/FAIL shape check (the reproduction criterion). */
inline bool
shapeCheck(const std::string& what, bool ok)
{
    std::cout << (ok ? "  [SHAPE PASS] " : "  [SHAPE FAIL] ") << what
              << "\n";
    return ok;
}

/**
 * Harness-side front end to the SweepEngine: queue points (presets or
 * custom topologies), run them in parallel, read results back by the
 * submission handle, and finish() with a JSON dump of every point.
 *
 * Handles stay valid across multiple run() batches, so a harness can
 * interleave queue/run/print phases and still get one merged JSON
 * report at the end.
 */
class Sweep
{
  public:
    explicit Sweep(std::string name, unsigned jobs = 0)
        : name_(std::move(name)), engine_(jobs),
          scale_(RunScale::fromEnv())
    {
    }

    const RunScale& scale() const { return scale_; }
    unsigned jobs() const { return engine_.jobs(); }

    /** Build-or-fetch a workload Program (shared across points). */
    const prog::Program&
    workload(const std::string& name)
    {
        return cache_.get(name);
    }

    /** Queue a preset design on a library workload. */
    std::size_t
    add(sim::Design d, const std::string& wl)
    {
        return add(d, wl, [](sim::SimConfig&) {});
    }

    /** Queue a preset design with a config tweak. */
    template <typename Tweak>
    std::size_t
    add(sim::Design d, const std::string& wl, Tweak&& tweak)
    {
        sim::SweepPoint p = sim::SweepPoint::preset(d, cache_.get(wl));
        applyScale(p.cfg);
        tweak(p.cfg);
        return enqueue(std::move(p));
    }

    /**
     * Queue a custom topology. @p topo is a factory invoked on the
     * worker that runs the point; @p cfgBase picks the SimConfig
     * preset the tweak starts from.
     */
    template <typename Factory, typename Tweak>
    std::size_t
    add(std::string label, const std::string& wl, Factory&& topo,
        sim::Design cfgBase, Tweak&& tweak)
    {
        sim::SweepPoint p;
        p.label = std::move(label);
        p.topology = std::forward<Factory>(topo);
        p.program = &cache_.get(wl);
        p.cfg = sim::makeConfig(cfgBase);
        applyScale(p.cfg);
        tweak(p.cfg);
        return enqueue(std::move(p));
    }

    template <typename Factory>
    std::size_t
    add(std::string label, const std::string& wl, Factory&& topo,
        sim::Design cfgBase)
    {
        return add(std::move(label), wl, std::forward<Factory>(topo),
                   cfgBase, [](sim::SimConfig&) {});
    }

    /**
     * Run every queued point; previously-run handles stay valid.
     * @p postRun (optional) executes on the worker while the point's
     * Simulator is still alive; its first argument is the point's
     * global handle (as returned by add()).
     */
    void
    run(const sim::SweepEngine::PostRun& postRun = nullptr)
    {
        const std::size_t base = outcomes_.size();
        sim::SweepEngine::PostRun rebased;
        if (postRun) {
            rebased = [&postRun, base](std::size_t idx,
                                       sim::Simulator& s,
                                       const sim::SimResult& r,
                                       const sim::SweepPoint& pt,
                                       std::ostream& os) {
                postRun(base + idx, s, r, pt, os);
            };
        }
        for (auto& o : engine_.run(rebased))
            outcomes_.push_back(std::move(o));
    }

    /** SimResult for a handle; throws if that point failed. */
    const sim::SimResult&
    res(std::size_t h) const
    {
        const sim::SweepOutcome& o = outcomes_.at(h);
        if (!o.ok())
            throw std::runtime_error("sweep point '" + o.label +
                                     "' failed: " + o.error);
        return o.result;
    }

    const sim::SweepOutcome&
    outcome(std::size_t h) const
    {
        return outcomes_.at(h);
    }

    /**
     * Write bench_results/<name>.json and print a one-line host
     * throughput summary; returns the process exit code for @p ok.
     */
    int
    finish(bool ok)
    {
        try {
            std::filesystem::create_directories("bench_results");
            std::ostringstream extra;
            extra << "\"shape_ok\": " << (ok ? "true" : "false")
                  << ",\n  \"warmup_insts\": " << scale_.warmup
                  << ",\n  \"measure_insts\": " << scale_.measure;
            sim::writeSweepJson("bench_results/" + name_ + ".json",
                                name_, outcomes_, engine_.jobs(),
                                extra.str());
            if (const char* p = std::getenv("COBRA_STATS_JSON"))
                sim::writeStatsJson(p, name_, outcomes_,
                                    engine_.jobs());
        } catch (const std::exception& e) {
            std::cerr << "[bench] JSON emit failed: " << e.what()
                      << "\n";
        }
        double wall = 0.0;
        std::uint64_t cycles = 0;
        for (const auto& o : outcomes_) {
            wall += o.host.wallSeconds;
            cycles += o.host.simCycles;
        }
        std::cerr << "[bench] " << name_ << ": " << outcomes_.size()
                  << " points, jobs=" << engine_.jobs() << ", "
                  << formatDouble(wall, 2) << " s simulating, "
                  << formatDouble(
                         wall > 0 ? static_cast<double>(cycles) / 1e3 /
                                        wall
                                  : 0.0,
                         1)
                  << " kilocycles/s aggregate\n";
        return ok ? 0 : 1;
    }

  private:
    void
    applyScale(sim::SimConfig& cfg) const
    {
        cfg.warmupInsts = scale_.warmup;
        cfg.maxInsts = scale_.measure;
        // COBRA_STATS_JSON=PATH: harness runs additionally emit the
        // full CobraScope stat hierarchy (used by the CI smoke job).
        if (const char* p = std::getenv("COBRA_STATS_JSON"))
            cfg.output.statsJsonPath = p;
    }

    std::size_t
    enqueue(sim::SweepPoint p)
    {
        return outcomes_.size() + engine_.add(std::move(p));
    }

    std::string name_;
    sim::SweepEngine engine_;
    RunScale scale_;
    prog::WorkloadCache cache_;
    std::vector<sim::SweepOutcome> outcomes_;
};

} // namespace cobra::bench

#endif // COBRA_BENCH_BENCH_UTIL_HPP
