/**
 * @file
 * Shared helpers for the figure/table regeneration harnesses: run a
 * (design, workload) pair and collect the paper's metrics.
 */

#ifndef COBRA_BENCH_BENCH_UTIL_HPP
#define COBRA_BENCH_BENCH_UTIL_HPP

#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "program/workload.hpp"
#include "sim/presets.hpp"
#include "sim/simulator.hpp"

namespace cobra::bench {

/** Standard measurement lengths (override with COBRA_FAST=1). */
struct RunScale
{
    std::uint64_t warmup = 120'000;
    std::uint64_t measure = 400'000;

    static RunScale
    fromEnv()
    {
        RunScale s;
        const char* fast = std::getenv("COBRA_FAST");
        if (fast != nullptr && fast[0] == '1') {
            s.warmup = 20'000;
            s.measure = 60'000;
        }
        return s;
    }
};

/** Run one design on one workload with optional config tweaks. */
template <typename Tweak>
sim::SimResult
runOne(sim::Design d, const prog::Program& program, const RunScale& scale,
       Tweak&& tweak)
{
    sim::SimConfig cfg = sim::makeConfig(d);
    cfg.warmupInsts = scale.warmup;
    cfg.maxInsts = scale.measure;
    tweak(cfg);
    sim::Simulator s(program, sim::buildTopology(d), cfg);
    return s.run();
}

inline sim::SimResult
runOne(sim::Design d, const prog::Program& program, const RunScale& scale)
{
    return runOne(d, program, scale, [](sim::SimConfig&) {});
}

/** Cache of built workloads (program generation is deterministic). */
class WorkloadCache
{
  public:
    const prog::Program&
    get(const std::string& name)
    {
        auto it = cache_.find(name);
        if (it == cache_.end()) {
            it = cache_
                     .emplace(name,
                              prog::buildWorkload(
                                  prog::WorkloadLibrary::profile(name)))
                     .first;
        }
        return it->second;
    }

  private:
    std::map<std::string, prog::Program> cache_;
};

/** Print a PASS/FAIL shape check (the reproduction criterion). */
inline bool
shapeCheck(const std::string& what, bool ok)
{
    std::cout << (ok ? "  [SHAPE PASS] " : "  [SHAPE FAIL] ") << what
              << "\n";
    return ok;
}

} // namespace cobra::bench

#endif // COBRA_BENCH_BENCH_UTIL_HPP
