/**
 * @file
 * Warp-mode acceptance benchmark (docs/PERFORMANCE.md "Warp mode").
 * One long run — mcf on B2, >= 50M simulated cycles at full scale —
 * is simulated twice: a full detailed reference, then warp mode with
 * the documented default operating point (16 intervals, 25k-inst
 * midpoint samples, 20k-cycle detailed warmup). The harness reports
 * wall-clock speedup and the IPC / branch-MPKI estimation error with
 * the estimator's own 95% CI half-widths, and shape-checks the
 * acceptance envelope:
 *
 *   speedup >= 4x, |IPC error| <= 1%, |MPKI error| <= 2%.
 *
 * COBRA_FAST=1 shrinks the run for CI smoke; wall-clock at that scale
 * is noise, so only (looser) error bounds are checked there.
 */

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "bench_util.hpp"
#include "warp/warp.hpp"

using namespace cobra;

namespace {

using Clock = std::chrono::steady_clock;

double
pct(double got, double want)
{
    return want != 0.0 ? 100.0 * (got - want) / want : 0.0;
}

} // namespace

int
main()
{
    const bool fast = [] {
        const char* f = std::getenv("COBRA_FAST");
        return f != nullptr && f[0] == '1';
    }();

    prog::WorkloadCache cache;
    const prog::Program& prog = cache.get("mcf");

    sim::SimConfig cfg = sim::makeConfig(sim::Design::B2);
    cfg.warmupInsts = fast ? 10'000 : 50'000;
    cfg.maxInsts = fast ? 1'000'000 : 15'000'000;
    cfg.maxCycles = 400'000'000;

    warp::WarpConfig w;
    w.intervals = fast ? 8 : 16;
    w.sampleInsts = 25'000;
    w.warmupCycles = fast ? 10'000 : 20'000;

    std::cout << "warp-mode acceptance: mcf on B2, " << cfg.maxInsts
              << " measured insts (" << (fast ? "FAST" : "full")
              << " scale)\n"
              << "warp point: K=" << w.intervals << ", sample "
              << w.sampleInsts << " insts, warmup " << w.warmupCycles
              << " cycles\n\n";

    // ---- Full detailed reference --------------------------------------
    const auto t0 = Clock::now();
    sim::Simulator full(prog, sim::buildTopology(sim::Design::B2),
                        cfg);
    const sim::SimResult ref = full.run();
    const double fullWall =
        std::chrono::duration<double>(Clock::now() - t0).count();

    // ---- Warp run ------------------------------------------------------
    const auto t1 = Clock::now();
    const warp::WarpEstimate est = warp::runWarp(
        prog, [] { return sim::buildTopology(sim::Design::B2); }, cfg,
        w);
    const double warpWall =
        std::chrono::duration<double>(Clock::now() - t1).count();

    const double ipcErr = pct(est.ipc, ref.ipc());
    const double mpkiErr = pct(est.mpki, ref.mpki());
    const double speedup = warpWall > 0.0 ? fullWall / warpWall : 0.0;

    TextTable t;
    t.addRow({"", "full detailed", "warp", "error"});
    t.addRow({"IPC", formatDouble(ref.ipc(), 4),
              formatDouble(est.ipc, 4) + " +/- " +
                  formatDouble(est.ipcCi95, 4),
              formatDouble(ipcErr, 2) + "%"});
    t.addRow({"branch MPKI", formatDouble(ref.mpki(), 4),
              formatDouble(est.mpki, 4) + " +/- " +
                  formatDouble(est.mpkiCi95, 4),
              formatDouble(mpkiErr, 2) + "%"});
    t.addRow({"cycles", std::to_string(ref.cycles),
              std::to_string(est.estimate.cycles),
              formatDouble(pct(static_cast<double>(est.estimate.cycles),
                               static_cast<double>(ref.cycles)),
                           2) +
                  "%"});
    t.addRow({"wall seconds", formatDouble(fullWall, 2),
              formatDouble(warpWall, 2),
              formatDouble(speedup, 1) + "x speedup"});
    t.print(std::cout);
    std::cout << "\nwarp work split: " << est.ffInsts
              << " insts fast-forwarded, " << est.detailedInsts
              << " detailed (" << est.detailedCycles << " cycles, "
              << est.warmupCycles << " warmup)\n\n";

    bool ok = true;
    if (fast) {
        // CI smoke: the sample is too small for the full envelope and
        // single-digit-second wall clocks are scheduler noise.
        ok &= bench::shapeCheck("|IPC error| <= 5% (FAST smoke bound)",
                                std::fabs(ipcErr) <= 5.0);
        ok &= bench::shapeCheck(
            "|MPKI error| <= 10% (FAST smoke bound)",
            std::fabs(mpkiErr) <= 10.0);
    } else {
        ok &= bench::shapeCheck("reference run spans >= 50M cycles",
                                ref.cycles >= 50'000'000);
        ok &= bench::shapeCheck("warp wall-clock speedup >= 4x",
                                speedup >= 4.0);
        ok &= bench::shapeCheck("|IPC error| <= 1%",
                                std::fabs(ipcErr) <= 1.0);
        ok &= bench::shapeCheck("|MPKI error| <= 2%",
                                std::fabs(mpkiErr) <= 2.0);
    }

    try {
        std::filesystem::create_directories("bench_results");
        std::ofstream j("bench_results/bench_warp.json");
        j << "{\n  \"bench\": \"warp\",\n"
          << "  \"shape_ok\": " << (ok ? "true" : "false") << ",\n"
          << "  \"fast\": " << (fast ? "true" : "false") << ",\n"
          << "  \"loop\": \"" << full.loopVariant() << "\",\n"
          << "  \"replica_group\": 1,\n"
          << "  \"workload\": \"mcf\",\n  \"design\": \"B2\",\n"
          << "  \"warmup_insts\": " << cfg.warmupInsts << ",\n"
          << "  \"measure_insts\": " << cfg.maxInsts << ",\n"
          << "  \"intervals\": " << w.intervals << ",\n"
          << "  \"sample_insts\": " << w.sampleInsts << ",\n"
          << "  \"warmup_cycles\": " << w.warmupCycles << ",\n"
          << "  \"full\": { \"ipc\": " << ref.ipc()
          << ", \"mpki\": " << ref.mpki()
          << ", \"cycles\": " << ref.cycles
          << ", \"wall_seconds\": " << fullWall << " },\n"
          << "  \"warp\": { \"ipc\": " << est.ipc
          << ", \"ipc_ci95\": " << est.ipcCi95
          << ", \"mpki\": " << est.mpki
          << ", \"mpki_ci95\": " << est.mpkiCi95
          << ", \"est_cycles\": " << est.estimate.cycles
          << ", \"ff_insts\": " << est.ffInsts
          << ", \"detailed_insts\": " << est.detailedInsts
          << ", \"detailed_cycles\": " << est.detailedCycles
          << ", \"wall_seconds\": " << warpWall << " },\n"
          << "  \"ipc_err_pct\": " << ipcErr << ",\n"
          << "  \"mpki_err_pct\": " << mpkiErr << ",\n"
          << "  \"speedup\": " << speedup << "\n}\n";
    } catch (const std::exception& e) {
        std::cerr << "[bench] JSON emit failed: " << e.what() << "\n";
    }

    return ok ? 0 : 1;
}
