/**
 * @file
 * Regenerates Fig. 8: area utilization of the three predictor
 * pipelines broken down across sub-components, including the cost of
 * the generated management structures ("Meta": history file + history
 * providers). Uses the analytical FinFET-proxy area model (DESIGN.md
 * §1); relative areas are the reproduction target.
 */

#include <iomanip>
#include <iostream>

#include "bench_util.hpp"

using namespace cobra;

int
main()
{
    const phys::AreaModel model;
    std::cout << "== Fig. 8: predictor area utilization breakdown ==\n\n";

    struct Row
    {
        std::string design;
        phys::AreaReport report;
    };
    std::vector<Row> rows;

    for (sim::Design d : sim::paperDesigns()) {
        bpu::BpuConfig bc = sim::makeConfig(d).bpu;
        bpu::BranchPredictorUnit unit(sim::buildTopology(d), bc);
        rows.push_back({sim::designName(d), unit.areaReport(model)});
    }

    for (const auto& row : rows) {
        std::cout << row.design << " (total "
                  << formatDouble(row.report.total() / 1e3, 1)
                  << " kum^2):\n";
        for (const auto& item : row.report.items) {
            const double frac = item.um2 / row.report.total();
            std::cout << "  " << std::left << std::setw(10) << item.name
                      << formatDouble(item.um2 / 1e3, 2) << " kum^2  |"
                      << std::string(
                             static_cast<std::size_t>(frac * 50), '#')
                      << "\n";
        }
        std::cout << "\n";
    }

    auto total = [&](const std::string& name) {
        for (const auto& r : rows)
            if (r.design == name)
                return r.report.total();
        return 0.0;
    };
    auto item = [&](const std::string& name, const std::string& comp) {
        for (const auto& r : rows)
            if (r.design == name)
                for (const auto& it : r.report.items)
                    if (it.name == comp)
                        return it.um2;
        return 0.0;
    };

    bool ok = true;
    ok &= bench::shapeCheck(
        "TAGE-L is the largest predictor pipeline",
        total("TAGE-L") > total("B2") &&
            total("TAGE-L") > total("Tournament"));
    ok &= bench::shapeCheck(
        "tagged structures (TAGE tables, BTB) dominate their designs",
        item("TAGE-L", "TAGE") + item("TAGE-L", "BTB") >
            0.5 * total("TAGE-L"));
    ok &= bench::shapeCheck(
        "management structures (Meta) incur non-trivial cost",
        item("Tournament", "Meta") > 0.05 * total("Tournament") &&
            item("TAGE-L", "Meta") > 0.02 * total("TAGE-L"));
    ok &= bench::shapeCheck(
        "the Tournament's local history provider makes its Meta "
        "slice comparatively large",
        item("Tournament", "Meta") / total("Tournament") >
            item("B2", "Meta") / total("B2"));
    return ok ? 0 : 1;
}
