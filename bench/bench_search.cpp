/**
 * @file
 * Composition-search acceptance benchmark (docs/SEARCH.md): the
 * surrogate-pruning win record. The same budgeted pool is searched
 * twice under one seed — exhaustively (seed_evals >= pool, so every
 * member gets a functional evaluation) and with the ridge-surrogate
 * prune — and the harness records how many functional evaluations the
 * surrogate saved while reaching the same top-1 certified design.
 *
 * Shape checks (the reproduction criteria):
 *
 *   - the pruned search saves functional evals (> 0, and the saving
 *     matches pool - seed_evals - survivors accounting);
 *   - both searches certify the same top-1 design (equal id);
 *   - the frontier contains the paper's TAGE-L point or a candidate
 *     dominating it.
 *
 * COBRA_FAST=1 shrinks pool and tier budgets for CI smoke.
 */

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "bench_util.hpp"
#include "search/driver.hpp"

using namespace cobra;

namespace {

/** Best certified candidate: accuracy desc, then area asc, then id. */
const search::Candidate*
top1(const search::SearchResult& r)
{
    const search::Candidate* best = nullptr;
    for (const search::Candidate& c : r.candidates) {
        if (!c.hasDetail)
            continue;
        if (best == nullptr ||
            c.detail.accuracy > best->detail.accuracy ||
            (c.detail.accuracy == best->detail.accuracy &&
             (c.areaUm2 < best->areaUm2 ||
              (c.areaUm2 == best->areaUm2 && c.id < best->id))))
            best = &c;
    }
    return best;
}

} // namespace

int
main()
{
    const bool fast = [] {
        const char* f = std::getenv("COBRA_FAST");
        return f != nullptr && f[0] == '1';
    }();

    prog::WorkloadCache cache;

    search::SearchConfig base;
    base.seed = 0xC0B7A;
    base.pool = fast ? 12 : 24;
    base.workloads = {"mcf"};
    base.functionalSurvivors = fast ? 6 : 10;
    base.warpSurvivors = fast ? 3 : 4;
    base.finalists = fast ? 1 : 2;
    base.traceBranches = fast ? 20'000 : 60'000;
    base.traceWarmup = fast ? 5'000 : 15'000;
    base.warpInsts = fast ? 60'000 : 200'000;
    base.warpIntervals = fast ? 2 : 4;
    base.detailInsts = fast ? 120'000 : 400'000;
    base.detailWarmup = fast ? 30'000 : 120'000;

    search::SearchConfig pruned = base;
    pruned.seedEvals = fast ? 6 : 10;

    search::SearchConfig exhaustive = base;
    exhaustive.seedEvals = base.pool; // Disables the surrogate.

    std::cout << "composition-search surrogate win: pool "
              << base.pool << ", seed 0x" << std::hex << base.seed
              << std::dec << ", workload mcf ("
              << (fast ? "FAST" : "full") << " scale)\n\n";

    const search::SearchResult ex =
        search::runSearch(exhaustive, cache);
    const search::SearchResult pr = search::runSearch(pruned, cache);

    TextTable t;
    t.addRow({"mode", "functional", "warp", "detailed", "saved",
              "top-1", "top-1 acc"});
    const search::Candidate* exTop = top1(ex);
    const search::Candidate* prTop = top1(pr);
    auto row = [&t](const char* mode, const search::SearchResult& r,
                    const search::Candidate* top) {
        t.addRow({mode, std::to_string(r.functionalEvals),
                  std::to_string(r.warpEvals),
                  std::to_string(r.detailedEvals),
                  std::to_string(r.evalsSaved),
                  top != nullptr ? top->id : "-",
                  top != nullptr
                      ? formatDouble(top->detail.accuracy, 4)
                      : "-"});
    };
    row("exhaustive", ex, exTop);
    row("surrogate", pr, prTop);
    t.print(std::cout);
    std::cout << "\n";

    bool ok = true;
    ok &= bench::shapeCheck(
        "surrogate prune saves functional evals",
        pr.evalsSaved > 0 && pr.surrogateUsed &&
            pr.functionalEvals < ex.functionalEvals);
    ok &= bench::shapeCheck(
        "exhaustive mode evaluates the whole pool",
        !ex.surrogateUsed &&
            ex.functionalEvals >=
                static_cast<unsigned>(ex.candidates.size()));
    ok &= bench::shapeCheck(
        "equal top-1 certified design",
        exTop != nullptr && prTop != nullptr &&
            exTop->id == prTop->id);
    const bool tagelOnFrontier = std::any_of(
        pr.frontier.begin(), pr.frontier.end(), [&pr](std::size_t i) {
            return pr.candidates[i].id == "preset-tagel";
        });
    const auto* tagel = [&pr]() -> const search::Candidate* {
        for (const search::Candidate& c : pr.candidates)
            if (c.id == "preset-tagel")
                return &c;
        return nullptr;
    }();
    const bool tagelDominated =
        tagel != nullptr && tagel->hasDetail &&
        std::any_of(pr.frontier.begin(), pr.frontier.end(),
                    [&pr, tagel](std::size_t i) {
                        const search::Candidate& c = pr.candidates[i];
                        return c.detail.accuracy >=
                                   tagel->detail.accuracy &&
                               c.areaUm2 <= tagel->areaUm2 &&
                               c.latency <= tagel->latency;
                    });
    ok &= bench::shapeCheck(
        "frontier contains TAGE-L or a dominator",
        tagelOnFrontier || tagelDominated);

    // Machine-readable win record (committed; see bench_results/README).
    {
        std::filesystem::create_directories("bench_results");
        std::ofstream j("bench_results/bench_search.json");
        j << "{\n  \"bench\": \"bench_search\",\n"
          << "  \"fast\": " << (fast ? "true" : "false") << ",\n"
          << "  \"seed\": " << base.seed << ",\n"
          << "  \"pool\": " << base.pool << ",\n"
          << "  \"exhaustive_functional_evals\": "
          << ex.functionalEvals << ",\n"
          << "  \"pruned_functional_evals\": " << pr.functionalEvals
          << ",\n"
          << "  \"evals_saved\": " << pr.evalsSaved << ",\n"
          << "  \"surrogate_rmse\": " << pr.surrogateRmse << ",\n"
          << "  \"top1\": \""
          << (prTop != nullptr ? prTop->id : "") << "\",\n"
          << "  \"top1_matches_exhaustive\": "
          << ((exTop != nullptr && prTop != nullptr &&
               exTop->id == prTop->id)
                  ? "true"
                  : "false")
          << ",\n"
          << "  \"frontier_size\": " << pr.frontier.size() << "\n}\n";
    }

    std::cout << (ok ? "\nSHAPE PASS\n" : "\nSHAPE FAIL\n");
    return ok ? 0 : 1;
}
