/**
 * @file
 * Regenerates Table I: parameters and storage of the three evaluated
 * COBRA-designed predictors. Storage is computed from the actual
 * component geometries; the paper's reported values are printed for
 * comparison (the big shared BTB is accounted separately, matching
 * the paper's convention — see DESIGN.md §4).
 */

#include <iostream>

#include "bench_util.hpp"

using namespace cobra;

int
main()
{
    std::cout << "== Table I: Parameters of evaluated COBRA-designed "
                 "predictors ==\n\n";

    const double paperKib[3] = {6.8, 6.5, 28.0};

    TextTable t;
    t.addRow({"Topology", "Description", "Storage (model)",
              "Storage (paper)", "BTB extra"});

    int i = 0;
    for (sim::Design d : sim::paperDesigns()) {
        const sim::SimConfig cfg = sim::makeConfig(d);
        bpu::Topology topo = sim::buildTopology(d);

        std::uint64_t dirBits = 0;
        std::uint64_t btbBits = 0;
        for (auto* c : topo.componentList()) {
            if (c->name().find("BTB") != std::string::npos)
                btbBits += c->storageBits();
            else
                dirBits += c->storageBits();
        }
        dirBits += cfg.bpu.ghistBits;
        if (d == sim::Design::Tourney)
            dirBits += std::uint64_t{cfg.bpu.lhistSets} *
                       cfg.bpu.lhistBits;

        t.beginRow();
        t.cell(sim::designName(d));
        t.cell(sim::designDescription(d));
        t.cell(formatKiB(dirBits));
        t.cell(formatDouble(paperKib[i], 1) + " KB");
        t.cell(formatKiB(btbBits));
        ++i;
    }
    t.print(std::cout);

    std::cout << "\nPer-component detail:\n";
    for (sim::Design d : sim::paperDesigns()) {
        bpu::Topology topo = sim::buildTopology(d);
        std::cout << "  " << sim::designName(d) << " ("
                  << topo.describe() << ")\n";
        for (auto* c : topo.componentList()) {
            std::cout << "    " << c->describe() << " — "
                      << formatKiB(c->storageBits()) << "\n";
        }
    }

    // Shape checks: relative storage ordering must match the paper.
    bool ok = true;
    auto dirStorage = [](sim::Design d) {
        bpu::Topology topo = sim::buildTopology(d);
        std::uint64_t bits = 0;
        for (auto* c : topo.componentList())
            if (c->name().find("BTB") == std::string::npos)
                bits += c->storageBits();
        return bits;
    };
    std::cout << "\n";
    ok &= bench::shapeCheck(
        "TAGE-L needs several times the storage of B2/Tourney",
        dirStorage(sim::Design::TageL) >
            2 * dirStorage(sim::Design::B2) &&
            dirStorage(sim::Design::TageL) >
                2 * dirStorage(sim::Design::Tourney));
    ok &= bench::shapeCheck(
        "B2 and Tourney are within 2x of each other",
        dirStorage(sim::Design::B2) <
            2 * dirStorage(sim::Design::Tourney) &&
            dirStorage(sim::Design::Tourney) <
                2 * dirStorage(sim::Design::B2));
    return ok ? 0 : 1;
}
