/**
 * @file
 * Regenerates the content of Fig. 2: the pipeline timing contract of
 * the COBRA interface — queries at Fetch-0, histories provided at the
 * end of Fetch-1, predictions available at Fetch-1/2/3 depending on
 * component latency. Demonstrated by instrumenting a query against
 * the TAGE-L pipeline and printing which components have responded at
 * each stage.
 */

#include <iostream>

#include "bench_util.hpp"

using namespace cobra;

int
main()
{
    bpu::Topology topo = sim::buildTopology(sim::Design::TageL);
    std::cout << "== Fig. 2: COBRA query/response timing ==\n\n";
    std::cout << "Topology: " << topo.describe() << "\n\n";

    // Table: stage | inputs available | components responding.
    TextTable t;
    t.addRow({"Cycle", "Inputs available", "Responding components"});
    const auto comps = topo.componentList();
    const unsigned depth = topo.maxLatency();

    for (unsigned d = 0; d <= depth; ++d) {
        t.beginRow();
        t.cell("Fetch-" + std::to_string(d));
        if (d == 0)
            t.cell("fetch PC");
        else if (d == 1)
            t.cell("PC (histories arrive at end of cycle)");
        else
            t.cell("PC + ghist + lhist");
        std::string resp;
        for (auto* c : comps) {
            if (c->latency() == d) {
                if (!resp.empty())
                    resp += ", ";
                resp += c->name();
            }
        }
        if (d == 0)
            resp = "(query accepted)";
        else if (resp.empty())
            resp = "(prediction carried over)";
        t.cell(resp);
    }
    t.print(std::cout);

    // Dynamic verification via the composed pipeline: a stage-1
    // bundle never reflects the 3-cycle components.
    bpu::BpuConfig bc;
    bc.fetchWidth = 4;
    bc.ghistBits = 64;
    bpu::BranchPredictorUnit unit(sim::buildTopology(sim::Design::TageL),
                                  bc);
    bpu::QueryState q;
    unit.beginQuery(q, 0x1'0000, 4);
    unit.stage(q, 1);
    const bool histAtS1 = q.historyCaptured();
    unit.captureHistory(q);
    unit.stage(q, 2);
    unit.stage(q, 3);

    bool ok = true;
    ok &= bench::shapeCheck(
        "histories are not visible during Fetch-1 evaluation",
        !histAtS1);
    ok &= bench::shapeCheck(
        "histories captured at the Fetch-1/Fetch-2 boundary",
        q.historyCaptured());
    ok &= bench::shapeCheck("pipeline depth equals max latency",
                            unit.maxLatency() == 3);
    return ok ? 0 : 1;
}
