/**
 * @file
 * Regenerates Fig. 9: area utilization of the full 4-wide BOOM-like
 * core with each of the three evaluated predictors, highlighting the
 * paper's observation that even a large predictor is only a small
 * portion of a big out-of-order core.
 */

#include <iomanip>
#include <iostream>

#include "bench_util.hpp"
#include "sim/core_area.hpp"

using namespace cobra;

int
main()
{
    const phys::AreaModel model;
    std::cout << "== Fig. 9: core area with each evaluated predictor "
                 "==\n\n";

    double bpuFracMax = 0.0;
    double totalMin = 1e30, totalMax = 0.0;
    for (sim::Design d : sim::paperDesigns()) {
        const phys::AreaReport r = sim::coreAreaReport(d, model);
        std::cout << r.title << " — total "
                  << formatDouble(r.total() / 1e6, 3) << " mm^2:\n";
        for (const auto& item : r.items) {
            const double frac = item.um2 / r.total();
            std::cout << "  " << std::left << std::setw(14)
                      << item.name << std::right << std::setw(8)
                      << formatDouble(item.um2 / 1e3, 0) << " kum^2  "
                      << formatDouble(100 * frac, 1) << "%  |"
                      << std::string(
                             static_cast<std::size_t>(frac * 40), '#')
                      << "\n";
            if (item.name == "BPU")
                bpuFracMax = std::max(bpuFracMax, frac);
        }
        totalMin = std::min(totalMin, r.total());
        totalMax = std::max(totalMax, r.total());
        std::cout << "\n";
    }

    bool ok = true;
    ok &= bench::shapeCheck(
        "even the largest predictor is a small portion of the core "
        "(< 15%)",
        bpuFracMax < 0.15);
    ok &= bench::shapeCheck(
        "the predictor choice barely moves total core area (< 10%)",
        (totalMax - totalMin) / totalMax < 0.10);
    return ok ? 0 : 1;
}
