/**
 * @file
 * Trace-replay throughput harness (PR 8 regression gate). Three
 * checks on the paper tuples (TAGE-L/leela, Tournament/x264, B2/gcc):
 *
 *  1. Bit identity: the replay-mode SimResult of every point must
 *     equal the execute-mode result — replay is only interesting if
 *     it is a perfect stand-in for execution.
 *
 *  2. Shared decode: loading the same capture for every replica of a
 *     point must decode the file exactly once per workload
 *     (prog::WorkloadCache content-addressed cache), not once per run.
 *
 *  3. Throughput: replay kcycles/s vs execute kcycles/s on the same
 *     host in the same run. Replay skips the oracle's PRNG decode
 *     (~3.5% of execute-mode runtime, see docs/PERFORMANCE.md), so
 *     the geomean ratio must stay >= 0.9 — replay regressing well
 *     below execute speed means the replay hot path broke.
 *
 * JSON side-cars (for tools/check_perf_regression.py, unchanged):
 *   bench_results/bench_trace_replay.json    replay points + speedups
 *   bench_results/BASELINE_trace_replay.json execute points (the
 *                                            same-run denominator)
 *
 * Gate: python3 tools/check_perf_regression.py \
 *         --fresh bench_results/bench_trace_replay.json \
 *         --baseline bench_results/BASELINE_trace_replay.json \
 *         --committed <committed bench_trace_replay.json>
 *
 * Override the repetition count with COBRA_THROUGHPUT_REPS.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include <unistd.h>

#include "bench_util.hpp"
#include "trace/replay.hpp"

using namespace cobra;

namespace {

struct Point
{
    sim::Design design;
    const char* wl;
};

/** Same tuples as bench_host_throughput, so the numbers line up. */
constexpr Point kPoints[] = {
    {sim::Design::TageL, "leela"},
    {sim::Design::Tourney, "x264"},
    {sim::Design::B2, "gcc"},
};
constexpr std::uint64_t kWarmup = 10'000;
constexpr std::uint64_t kMeasure = 150'000;

sim::SweepPoint
makePoint(const Point& p, prog::WorkloadCache& cache)
{
    sim::SweepPoint pt =
        sim::SweepPoint::preset(p.design, cache.get(p.wl));
    pt.cfg.warmupInsts = kWarmup;
    pt.cfg.maxInsts = kMeasure;
    return pt;
}

} // namespace

int
main()
{
    bool ok = true;
    prog::WorkloadCache cache;

    unsigned reps = 5;
    if (const char* env = std::getenv("COBRA_THROUGHPUT_REPS"))
        reps = std::max(1u, static_cast<unsigned>(std::atoi(env)));

    const std::filesystem::path scratch =
        std::filesystem::temp_directory_path() /
        ("cobra_bench_trace_replay." + std::to_string(::getpid()));
    std::filesystem::create_directories(scratch);

    // ---- Capture one trace per workload -------------------------------
    std::cout << "trace replay vs execute (single thread, best of "
              << reps << ", loop only, " << kMeasure << " insts)\n\n";
    std::vector<std::string> tracePaths;
    double captureWall = 0.0;
    for (const Point& p : kPoints) {
        const std::string path =
            (scratch / (std::string(p.wl) + ".cbtr")).string();
        const auto t0 = std::chrono::steady_clock::now();
        trace::captureTrace(cache.get(p.wl), path, kWarmup + kMeasure);
        const auto t1 = std::chrono::steady_clock::now();
        captureWall += std::chrono::duration<double>(t1 - t0).count();
        tracePaths.push_back(path);
    }

    // ---- Execute-mode reference ---------------------------------------
    sim::SweepEngine execEngine(1);
    for (const Point& p : kPoints)
        for (unsigned r = 0; r < reps; ++r)
            execEngine.add(makePoint(p, cache));
    const auto execOuts = execEngine.run();

    // ---- Replay mode ---------------------------------------------------
    // getTrace is called once per replica on purpose: the decode-once
    // evidence below is the cache absorbing reps x points lookups.
    sim::SweepEngine replayEngine(1);
    for (std::size_t pi = 0; pi < std::size(kPoints); ++pi)
        for (unsigned r = 0; r < reps; ++r) {
            sim::SweepPoint pt = makePoint(kPoints[pi], cache);
            pt.cfg.replayTrace = cache.getTrace(tracePaths[pi]);
            replayEngine.add(std::move(pt));
        }
    const auto replayOuts = replayEngine.run();

    // ---- Compare --------------------------------------------------------
    TextTable t;
    t.addRow({"point", "replay kc/s", "execute kc/s", "ratio"});
    double logSum = 0.0;
    bool identical = true;
    std::ostringstream pointsJson;
    std::ostringstream baselineJson;
    for (std::size_t pi = 0; pi < std::size(kPoints); ++pi) {
        double bestExec = 0.0;
        double bestReplay = 0.0;
        for (unsigned r = 0; r < reps; ++r) {
            const auto& eo = execOuts.at(pi * reps + r);
            const auto& ro = replayOuts.at(pi * reps + r);
            if (!eo.ok() || !ro.ok()) {
                std::cerr << "point failed: "
                          << (eo.ok() ? ro.error : eo.error) << "\n";
                return 1;
            }
            identical &= eo.result == ro.result;
            bestExec = std::max(bestExec, eo.host.kiloCyclesPerSec());
            bestReplay =
                std::max(bestReplay, ro.host.kiloCyclesPerSec());
        }
        const std::string label = execOuts.at(pi * reps).label;
        const std::string& loop = replayOuts.at(pi * reps).loop;
        const double speedup = bestExec > 0.0 ? bestReplay / bestExec : 0.0;
        logSum += std::log(speedup);
        t.addRow({label, formatDouble(bestReplay, 1),
                  formatDouble(bestExec, 1),
                  formatDouble(speedup, 2) + "x"});
        if (pi != 0) {
            pointsJson << ",\n";
            baselineJson << ",\n";
        }
        pointsJson << "    { \"label\": \"" << sim::jsonEscape(label)
                   << "\", \"loop\": \""
                   << sim::jsonEscape(loop.empty() ? "generic" : loop)
                   << "\", \"kilocycles_per_sec\": " << bestReplay
                   << ", \"baseline_kilocycles_per_sec\": " << bestExec
                   << ", \"speedup\": " << speedup << " }";
        baselineJson << "    { \"label\": \"" << sim::jsonEscape(label)
                     << "\", \"kilocycles_per_sec\": " << bestExec
                     << " }";
    }
    t.print(std::cout);

    const double geomean = std::exp(logSum / std::size(kPoints));
    const std::uint64_t decodes = cache.traceDecodes();
    const std::uint64_t replayRuns = std::size(kPoints) * reps;
    std::cout << "\ncapture: " << formatDouble(captureWall, 2)
              << " s for " << std::size(kPoints) << " workloads\n"
              << "replay geomean vs execute: "
              << formatDouble(geomean, 2) << "x\n"
              << "trace decodes: " << decodes << " for " << replayRuns
              << " replay runs (content-addressed cache)\n\n";

    ok &= bench::shapeCheck(
        "replay results bit-identical to execute on every point",
        identical);
    ok &= bench::shapeCheck(
        "decode amortized to once per workload (" +
            std::to_string(decodes) + " decodes, " +
            std::to_string(replayRuns) + " runs)",
        decodes == std::size(kPoints));
    ok &= bench::shapeCheck("replay geomean throughput >= 0.9x execute",
                            geomean >= 0.9);

    // ---- JSON report ---------------------------------------------------
    try {
        std::filesystem::create_directories("bench_results");
        std::ofstream j("bench_results/bench_trace_replay.json");
        j << "{\n  \"bench\": \"trace_replay\",\n"
          << "  \"shape_ok\": " << (ok ? "true" : "false") << ",\n"
          << "  \"reps\": " << reps << ",\n"
          << "  \"warmup_insts\": " << kWarmup << ",\n"
          << "  \"measure_insts\": " << kMeasure << ",\n"
          << "  \"geomean_speedup\": " << geomean << ",\n"
          << "  \"trace_decodes\": " << decodes << ",\n"
          << "  \"replay_runs\": " << replayRuns << ",\n"
          << "  \"capture_wall_seconds\": " << captureWall << ",\n"
          << "  \"points\": [\n"
          << pointsJson.str() << "\n  ]\n}\n";
        std::ofstream b("bench_results/BASELINE_trace_replay.json");
        b << "{\n  \"bench\": \"trace_replay_baseline\",\n"
          << "  \"note\": \"execute-mode kcycles/s from the same run "
          << "as bench_trace_replay.json; the denominator "
          << "check_perf_regression.py divides by\",\n"
          << "  \"points\": [\n"
          << baselineJson.str() << "\n  ]\n}\n";
    } catch (const std::exception& e) {
        std::cerr << "[bench] JSON emit failed: " << e.what() << "\n";
    }

    std::error_code ec;
    std::filesystem::remove_all(scratch, ec);
    return ok ? 0 : 1;
}
