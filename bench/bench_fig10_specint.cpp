/**
 * @file
 * Regenerates Fig. 10 (and the systems of Table III): branch misses
 * per kilo-instruction and IPC across the ten SPECint17 proxy
 * workloads for the three COBRA-BOOM variants, plus the REF-BIG
 * commercial-class stand-in (DESIGN.md §1 documents why we do not
 * fabricate Skylake/Graviton measurements).
 *
 * The reproduction target is the figure's *shape*: TAGE-L most
 * accurate, B2 and Tournament cheaper but worse, the Tournament
 * hurt by untagged aliasing on several workloads, and the
 * commercial-class configuration ahead of all three.
 */

#include <iostream>

#include "bench_util.hpp"

using namespace cobra;

int
main()
{
    bench::Sweep sweep("fig10_specint");

    const std::vector<sim::Design> systems = {
        sim::Design::Tourney, sim::Design::B2, sim::Design::TageL,
        sim::Design::RefBig};

    std::cout << "== Table III: evaluated systems ==\n\n";
    {
        TextTable t;
        t.addRow({"Core", "Branch predictor", "L1 (I/D)", "L2/L3",
                  "Platform"});
        for (sim::Design d : systems) {
            const sim::SimConfig cfg = sim::makeConfig(d);
            t.beginRow();
            t.cell(d == sim::Design::RefBig
                       ? "commercial-class stand-in"
                       : "BOOM (model)");
            t.cell(sim::designName(d));
            t.cell(std::to_string(cfg.caches.l1i.sizeBytes / 1024) +
                   "/" +
                   std::to_string(cfg.caches.l1d.sizeBytes / 1024) +
                   " KB");
            t.cell(std::to_string(cfg.caches.l2.sizeBytes / 1024) +
                   " KB/" +
                   std::to_string(cfg.caches.l3.sizeBytes / 1024 /
                                  1024) +
                   " MB");
            t.cell("cycle-level model");
        }
        t.print(std::cout);
        std::cout << "(The paper compares against Intel Skylake and "
                     "AWS Graviton hardware;\n we substitute a "
                     "simulated large-predictor wide core — see "
                     "DESIGN.md.)\n\n";
    }

    const auto workloads = prog::WorkloadLibrary::specint17();

    // Queue the full 10x4 grid, run it on the SweepEngine, then read
    // the outcomes back into the same map the tables consume.
    std::map<std::string, std::map<std::string, std::size_t>> handle;
    for (const auto& wl : workloads)
        for (sim::Design d : systems)
            handle[wl][sim::designName(d)] = sweep.add(d, wl);
    std::cerr << "[bench] running "
              << workloads.size() * systems.size() << " points on "
              << sweep.jobs() << " job(s)\n";
    sweep.run();

    std::map<std::string, std::map<std::string, sim::SimResult>> results;
    for (const auto& wl : workloads)
        for (sim::Design d : systems)
            results[wl][sim::designName(d)] =
                sweep.res(handle[wl][sim::designName(d)]);

    // ---- MPKI panel ------------------------------------------------------
    std::cout << "== Fig. 10 (top): branch misses per kilo-instruction "
                 "==\n\n";
    {
        TextTable t;
        std::vector<std::string> header{"Benchmark"};
        for (sim::Design d : systems)
            header.push_back(sim::designName(d));
        t.addRow(header);
        std::map<std::string, std::vector<double>> series;
        for (const auto& wl : workloads) {
            t.beginRow();
            t.cell(wl);
            for (sim::Design d : systems) {
                const auto& r = results[wl][sim::designName(d)];
                t.cell(r.mpki(), 2);
                series[sim::designName(d)].push_back(r.mpki());
            }
        }
        t.beginRow();
        t.cell("HARMEAN");
        for (sim::Design d : systems)
            t.cell(harmonicMean(series[sim::designName(d)]), 2);
        t.print(std::cout);
        std::cout << "\n";
    }

    // ---- IPC panel -------------------------------------------------------
    std::cout << "== Fig. 10 (bottom): IPC ==\n\n";
    std::map<std::string, std::vector<double>> ipcSeries;
    {
        TextTable t;
        std::vector<std::string> header{"Benchmark"};
        for (sim::Design d : systems)
            header.push_back(sim::designName(d));
        t.addRow(header);
        for (const auto& wl : workloads) {
            t.beginRow();
            t.cell(wl);
            for (sim::Design d : systems) {
                const auto& r = results[wl][sim::designName(d)];
                t.cell(r.ipc(), 3);
                ipcSeries[sim::designName(d)].push_back(r.ipc());
            }
        }
        t.beginRow();
        t.cell("HARMEAN");
        for (sim::Design d : systems)
            t.cell(harmonicMean(ipcSeries[sim::designName(d)]), 3);
        t.print(std::cout);
        std::cout << "\n";
    }

    // ---- Shape checks ----------------------------------------------------
    auto harmeanMpki = [&](const char* name) {
        std::vector<double> v;
        for (const auto& wl : workloads)
            v.push_back(results[wl][name].mpki());
        return harmonicMean(v);
    };
    auto winsFor = [&](const char* a, const char* b) {
        int wins = 0;
        for (const auto& wl : workloads)
            wins += results[wl][a].mpki() < results[wl][b].mpki();
        return wins;
    };

    bool ok = true;
    ok &= bench::shapeCheck(
        "TAGE-L has the lowest harmonic-mean MPKI of the three "
        "COBRA designs",
        harmeanMpki("TAGE-L") < harmeanMpki("B2") &&
            harmeanMpki("TAGE-L") < harmeanMpki("Tournament"));
    ok &= bench::shapeCheck(
        "TAGE-L beats the Tournament on most workloads",
        winsFor("TAGE-L", "Tournament") >= 7);
    ok &= bench::shapeCheck(
        "the untagged Tournament loses to tagged B2 on several "
        "workloads (aliasing, §V-B)",
        winsFor("B2", "Tournament") >= 4);
    ok &= bench::shapeCheck(
        "the commercial-class stand-in leads TAGE-L in mean IPC",
        harmonicMean(ipcSeries["REF-BIG"]) >
            harmonicMean(ipcSeries["TAGE-L"]));
    return sweep.finish(ok);
}
