/**
 * @file
 * Implements the paper's §VI-A future-work item: predictor access
 * energy ("the energy cost of continuously reading predictor SRAMs
 * is significant" [36]). Runs each design and reports access energy
 * per kilo-instruction broken down by sub-component, exposing the
 * accuracy-vs-energy trade the paper says it plans to tune.
 */

#include <iostream>

#include "bench_util.hpp"
#include "program/workload.hpp"
#include "sim/simulator.hpp"

using namespace cobra;

int
main()
{
    const bench::RunScale scale = bench::RunScale::fromEnv();
    bench::WorkloadCache cache;
    const phys::EnergyModel model;

    std::cout << "== §VI-A (future work): predictor access energy "
                 "==\n\n";

    TextTable t;
    t.addRow({"Design", "nJ / kilo-inst", "accuracy", "top consumer"});

    struct Summary
    {
        std::string design;
        double njPerKi = 0;
    };
    std::vector<Summary> sums;

    for (sim::Design d : sim::paperDesigns()) {
        const prog::Program& p = cache.get("gcc");
        sim::SimConfig cfg = sim::makeConfig(d);
        cfg.warmupInsts = scale.warmup;
        cfg.maxInsts = scale.measure;
        sim::Simulator s(p, sim::buildTopology(d), cfg);
        const auto r = s.run();

        const phys::EnergyReport er = s.bpu().energyReport(model);
        const double njPerKi =
            er.totalPj() / 1000.0 / (r.insts / 1000.0);
        std::string top = "?";
        double topPj = -1;
        for (const auto& item : er.items) {
            if (item.pj > topPj) {
                topPj = item.pj;
                top = item.name;
            }
        }
        sums.push_back({sim::designName(d), njPerKi});

        t.beginRow();
        t.cell(sim::designName(d));
        t.cell(njPerKi, 2);
        t.cell(r.accuracy(), 4);
        t.cell(top + " (" +
               formatDouble(100 * topPj / er.totalPj(), 0) + "%)");

        std::cout << sim::designName(d) << " breakdown (pJ):\n";
        for (const auto& item : er.items)
            std::cout << "  " << item.name << ": "
                      << formatDouble(item.pj / 1e6, 2) << " uJ\n";
        std::cout << "\n";
    }
    t.print(std::cout);
    std::cout << "\n";

    auto get = [&](const std::string& n) {
        for (const auto& s : sums)
            if (s.design == n)
                return s.njPerKi;
        return 0.0;
    };
    bool ok = true;
    ok &= bench::shapeCheck(
        "the accurate TAGE-L pays the most access energy (its 7 "
        "tagged tables are read every fetch)",
        get("TAGE-L") > get("B2") && get("TAGE-L") > get("Tournament"));
    return ok ? 0 : 1;
}
