/**
 * @file
 * Implements the paper's §VI-A future-work item: predictor access
 * energy ("the energy cost of continuously reading predictor SRAMs
 * is significant" [36]). Runs each design and reports access energy
 * per kilo-instruction broken down by sub-component, exposing the
 * accuracy-vs-energy trade the paper says it plans to tune.
 */

#include <iostream>

#include "bench_util.hpp"
#include "program/workload.hpp"
#include "sim/simulator.hpp"

using namespace cobra;

int
main()
{
    bench::Sweep sweep("energy");
    const phys::EnergyModel model;

    std::cout << "== §VI-A (future work): predictor access energy "
                 "==\n\n";

    const std::vector<sim::Design> designs = sim::paperDesigns();
    std::vector<std::size_t> handles;
    for (sim::Design d : designs)
        handles.push_back(sweep.add(d, "gcc"));

    // The energy report needs the live Simulator, so it is gathered
    // in the post-run hook; each point writes only its own slot.
    std::vector<phys::EnergyReport> reports(handles.size());
    sweep.run([&](std::size_t h, sim::Simulator& s,
                  const sim::SimResult&, const sim::SweepPoint&,
                  std::ostream&) {
        reports.at(h) = s.bpu().energyReport(model);
    });

    TextTable t;
    t.addRow({"Design", "nJ / kilo-inst", "accuracy", "top consumer"});

    struct Summary
    {
        std::string design;
        double njPerKi = 0;
    };
    std::vector<Summary> sums;

    for (std::size_t i = 0; i < designs.size(); ++i) {
        const sim::Design d = designs[i];
        const auto& r = sweep.res(handles[i]);
        const phys::EnergyReport& er = reports[handles[i]];
        const double njPerKi =
            er.totalPj() / 1000.0 / (r.insts / 1000.0);
        std::string top = "?";
        double topPj = -1;
        for (const auto& item : er.items) {
            if (item.pj > topPj) {
                topPj = item.pj;
                top = item.name;
            }
        }
        sums.push_back({sim::designName(d), njPerKi});

        t.beginRow();
        t.cell(sim::designName(d));
        t.cell(njPerKi, 2);
        t.cell(r.accuracy(), 4);
        t.cell(top + " (" +
               formatDouble(100 * topPj / er.totalPj(), 0) + "%)");

        std::cout << sim::designName(d) << " breakdown (pJ):\n";
        for (const auto& item : er.items)
            std::cout << "  " << item.name << ": "
                      << formatDouble(item.pj / 1e6, 2) << " uJ\n";
        std::cout << "\n";
    }
    t.print(std::cout);
    std::cout << "\n";

    auto get = [&](const std::string& n) {
        for (const auto& s : sums)
            if (s.design == n)
                return s.njPerKi;
        return 0.0;
    };
    bool ok = true;
    ok &= bench::shapeCheck(
        "the accurate TAGE-L pays the most access energy (its 7 "
        "tagged tables are read every fetch)",
        get("TAGE-L") > get("B2") && get("TAGE-L") > get("Tournament"));
    return sweep.finish(ok);
}
