/**
 * @file
 * Quantifies the paper's §II-B methodological claim: trace-based
 * simulators "cannot model microarchitectural behaviors like
 * speculation and superscalar execution" and "demonstrate substantial
 * modelling error for branch prediction accuracy" [3], [6], [20].
 *
 * We evaluate the *identical* composed predictor pipelines two ways:
 *  - trace-driven: idealized one-branch-at-a-time evaluation with
 *    perfect instantly-updated histories (CBP-style), and
 *  - execution-driven: inside the speculating superscalar core, with
 *    wrong-path pollution, history skew, delayed commit-time updates
 *    and repair.
 * The gap is the modelling error a software trace model would make.
 */

#include <iostream>

#include "bench_util.hpp"
#include "trace/trace.hpp"

using namespace cobra;

int
main()
{
    bench::Sweep sweep("trace_vs_execution");
    const bench::RunScale scale = sweep.scale();

    std::cout << "== §II-B: trace-driven vs execution-driven accuracy "
                 "==\n\n";

    const std::vector<std::string> workloads = {"deepsjeng", "leela",
                                                "gcc", "dhrystone"};
    const std::vector<sim::Design> designs = sim::paperDesigns();

    // The execution-driven half of every comparison runs on the
    // sweep pool; the idealized trace evaluations stay on this
    // thread (they are cheap and share recorded traces per workload).
    std::vector<std::size_t> handles;
    for (const std::string& wl : workloads)
        for (sim::Design d : designs)
            handles.push_back(sweep.add(d, wl));
    sweep.run();

    TextTable t;
    t.addRow({"Workload", "Design", "trace acc", "in-core acc",
              "error (pp)"});

    std::vector<double> errors;
    std::size_t pi = 0;
    for (const std::string& wl : workloads) {
        const prog::Program& p = sweep.workload(wl);
        const trace::BranchTrace tr = trace::recordTrace(
            p, scale.measure / 4 + scale.warmup / 4);

        for (sim::Design d : designs) {
            const unsigned ghistBits = sim::makeConfig(d).bpu.ghistBits;
            trace::TraceDrivenEvaluator ev(
                bpu::ComposedPredictor(sim::buildTopology(d), 4),
                ghistBits);
            const auto traceRes = ev.evaluate(tr, tr.size() / 4);

            const auto& coreRes = sweep.res(handles[pi++]);

            const double err =
                traceRes.accuracy() - coreRes.accuracy();
            errors.push_back(err);
            t.beginRow();
            t.cell(wl);
            t.cell(sim::designName(d));
            t.cell(traceRes.accuracy(), 4);
            t.cell(coreRes.accuracy(), 4);
            t.cell(formatDouble(100 * err, 2));
        }
    }
    t.print(std::cout);

    const double meanErr = arithmeticMean(errors);
    std::cout << "\nmean modelling error (trace - in-core): "
              << formatDouble(100 * meanErr, 2) << " pp\n"
              << "(the paper's motivation: single-digit-percent "
                 "mispredict differences are commercially valuable, "
                 "and trace models miss speculation effects of this "
                 "size)\n\n";

    bool ok = true;
    ok &= bench::shapeCheck(
        "the idealized trace model overestimates accuracy "
        "(speculation effects are invisible to it)",
        meanErr > 0.0);
    int positive = 0;
    for (double e : errors)
        positive += e > -0.001;
    ok &= bench::shapeCheck(
        "the error is pervasive across designs and workloads",
        positive >= static_cast<int>(errors.size()) - 2);
    return sweep.finish(ok);
}
