/**
 * @file
 * Regenerates the §I measurement: "serializing the fetch unit behind
 * branch predictions in a 4-wide fetch BOOM core decreased IPC by
 * 15% in the Dhrystone synthetic benchmark" — i.e., superscalar
 * prediction (§III-C) matters.
 */

#include <iostream>

#include "bench_util.hpp"

using namespace cobra;

int
main()
{
    bench::Sweep sweep("intro_serialization");

    std::cout << "== §I: serializing fetch behind branch predictions "
                 "==\n\n";

    const std::vector<std::string> workloads = {"dhrystone", "coremark",
                                                "x264", "gcc"};
    std::vector<std::pair<std::size_t, std::size_t>> handles;
    for (const std::string& wl : workloads) {
        const std::size_t normal = sweep.add(sim::Design::TageL, wl);
        const std::size_t serial =
            sweep.add(sim::Design::TageL, wl, [](sim::SimConfig& cfg) {
                cfg.frontend.serializeFetch = true;
            });
        handles.emplace_back(normal, serial);
    }
    sweep.run();

    TextTable t;
    t.addRow({"Workload", "IPC (superscalar)", "IPC (serialized)",
              "delta"});

    double dhryDelta = 0.0;
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        const auto& normal = sweep.res(handles[i].first);
        const auto& serial = sweep.res(handles[i].second);
        const double delta =
            (serial.ipc() - normal.ipc()) / normal.ipc();
        if (workloads[i] == "dhrystone")
            dhryDelta = delta;
        t.beginRow();
        t.cell(workloads[i]);
        t.cell(normal.ipc(), 3);
        t.cell(serial.ipc(), 3);
        t.cell(formatDouble(100 * delta, 1) + "%");
    }
    t.print(std::cout);
    std::cout << "\nPaper reference: -15% IPC on Dhrystone.\n\n";

    bool ok = true;
    ok &= bench::shapeCheck(
        "serialization costs 5-30% IPC on Dhrystone (paper: 15%)",
        dhryDelta < -0.05 && dhryDelta > -0.30);
    return sweep.finish(ok);
}
