/**
 * @file
 * Regenerates the §I measurement: "serializing the fetch unit behind
 * branch predictions in a 4-wide fetch BOOM core decreased IPC by
 * 15% in the Dhrystone synthetic benchmark" — i.e., superscalar
 * prediction (§III-C) matters.
 */

#include <iostream>

#include "bench_util.hpp"

using namespace cobra;

int
main()
{
    const bench::RunScale scale = bench::RunScale::fromEnv();
    bench::WorkloadCache cache;

    std::cout << "== §I: serializing fetch behind branch predictions "
                 "==\n\n";

    TextTable t;
    t.addRow({"Workload", "IPC (superscalar)", "IPC (serialized)",
              "delta"});

    double dhryDelta = 0.0;
    for (const std::string wl :
         {"dhrystone", "coremark", "x264", "gcc"}) {
        const prog::Program& p = cache.get(wl);
        const auto normal =
            bench::runOne(sim::Design::TageL, p, scale);
        const auto serial = bench::runOne(
            sim::Design::TageL, p, scale, [](sim::SimConfig& cfg) {
                cfg.frontend.serializeFetch = true;
            });
        const double delta =
            (serial.ipc() - normal.ipc()) / normal.ipc();
        if (wl == "dhrystone")
            dhryDelta = delta;
        t.beginRow();
        t.cell(wl);
        t.cell(normal.ipc(), 3);
        t.cell(serial.ipc(), 3);
        t.cell(formatDouble(100 * delta, 1) + "%");
    }
    t.print(std::cout);
    std::cout << "\nPaper reference: -15% IPC on Dhrystone.\n\n";

    bool ok = true;
    ok &= bench::shapeCheck(
        "serialization costs 5-30% IPC on Dhrystone (paper: 15%)",
        dhryDelta < -0.05 && dhryDelta > -0.30);
    return ok ? 0 : 1;
}
