/**
 * @file
 * Host-throughput regression harness. Two checks:
 *
 *  1. Single-thread cycle-loop throughput (kilocycles of simulated
 *     time per wall second, loop only — setup excluded) on three
 *     representative points, best-of-N, compared against the committed
 *     pre-optimisation baseline in
 *     bench_results/BASELINE_host_throughput.json. The hot-path work
 *     (ROB ring + status mirror, seq scoreboard, scan guards, cached
 *     stat counters, allocation-free predictor path) must hold a
 *     >= 2x geomean speedup over that baseline.
 *
 *  2. Parallel sweep scaling: a 15-point grid at --jobs 4 vs --jobs 1.
 *     Requires real cores; SKIPped (not failed) on hosts with fewer
 *     than two, so the check is honest rather than noise.
 *
 * Override the baseline location with COBRA_BASELINE_JSON and the
 * repetition count with COBRA_THROUGHPUT_REPS.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "bench_util.hpp"

using namespace cobra;

namespace {

struct Point
{
    sim::Design design;
    const char* wl;
};

/** Must match the points recorded in the baseline JSON. */
constexpr Point kPoints[] = {
    {sim::Design::TageL, "leela"},
    {sim::Design::Tourney, "x264"},
    {sim::Design::B2, "gcc"},
};
constexpr std::uint64_t kWarmup = 10'000;
constexpr std::uint64_t kMeasure = 150'000;

/** Pull "kilocycles_per_sec" for @p label out of the baseline JSON. */
double
baselineKcps(const std::string& doc, const std::string& label)
{
    const std::size_t at = doc.find("\"label\": \"" + label + "\"");
    if (at == std::string::npos)
        return 0.0;
    const std::string key = "\"kilocycles_per_sec\": ";
    const std::size_t k = doc.find(key, at);
    if (k == std::string::npos)
        return 0.0;
    return std::strtod(doc.c_str() + k + key.size(), nullptr);
}

sim::SweepPoint
makePoint(const Point& p, prog::WorkloadCache& cache)
{
    sim::SweepPoint pt =
        sim::SweepPoint::preset(p.design, cache.get(p.wl));
    pt.cfg.warmupInsts = kWarmup;
    pt.cfg.maxInsts = kMeasure;
    return pt;
}

} // namespace

int
main()
{
    bool ok = true;
    prog::WorkloadCache cache;

    unsigned reps = 5;
    if (const char* env = std::getenv("COBRA_THROUGHPUT_REPS"))
        reps = std::max(1u, static_cast<unsigned>(std::atoi(env)));

    // ---- 1. Single-thread loop throughput vs committed baseline -------
    std::string baselinePath;
    if (const char* env = std::getenv("COBRA_BASELINE_JSON"))
        baselinePath = env;
    else
        baselinePath = std::string(COBRA_SOURCE_DIR) +
                       "/bench_results/BASELINE_host_throughput.json";

    std::string baselineDoc;
    {
        std::ifstream f(baselinePath);
        if (f.good()) {
            std::stringstream ss;
            ss << f.rdbuf();
            baselineDoc = ss.str();
        }
    }

    std::cout << "host throughput (single thread, best of " << reps
              << ", loop only, " << kMeasure << " insts)\n\n";
    TextTable t;
    t.addRow({"point", "kcycles/s", "baseline", "speedup"});

    // Queue reps copies of each point on a serial engine; the host
    // counters time each point's cycle loop only.
    sim::SweepEngine engine(1);
    for (const Point& p : kPoints)
        for (unsigned r = 0; r < reps; ++r)
            engine.add(makePoint(p, cache));
    const auto outs = engine.run();

    double logSum = 0.0;
    unsigned compared = 0;
    std::ostringstream pointsJson;
    for (std::size_t pi = 0; pi < std::size(kPoints); ++pi) {
        double best = 0.0;
        for (unsigned r = 0; r < reps; ++r) {
            const sim::SweepOutcome& o = outs.at(pi * reps + r);
            if (!o.ok()) {
                std::cerr << "point failed: " << o.error << "\n";
                return 1;
            }
            best = std::max(best, o.host.kiloCyclesPerSec());
        }
        const std::string label = outs.at(pi * reps).label;
        const std::string& loop = outs.at(pi * reps).loop;
        const unsigned group = outs.at(pi * reps).replicaGroup;
        const double base = baselineKcps(baselineDoc, label);
        const double speedup = base > 0.0 ? best / base : 0.0;
        if (base > 0.0) {
            logSum += std::log(speedup);
            ++compared;
        }
        t.addRow({label, formatDouble(best, 1),
                  base > 0.0 ? formatDouble(base, 1) : "n/a",
                  base > 0.0 ? formatDouble(speedup, 2) + "x" : "n/a"});
        if (pi != 0)
            pointsJson << ",\n";
        pointsJson << "    { \"label\": \"" << sim::jsonEscape(label)
                   << "\", \"loop\": \""
                   << sim::jsonEscape(loop.empty() ? "generic" : loop)
                   << "\", \"replica_group\": " << group
                   << ", \"kilocycles_per_sec\": " << best
                   << ", \"baseline_kilocycles_per_sec\": " << base
                   << ", \"speedup\": " << speedup << " }";
    }
    t.print(std::cout);
    std::cout << "\n";

    double geomean = 0.0;
    if (compared == std::size(kPoints)) {
        geomean = std::exp(logSum / compared);
        std::cout << "geomean speedup vs baseline: "
                  << formatDouble(geomean, 2) << "x\n";
        ok &= bench::shapeCheck(
            "cycle-loop throughput >= 2x the committed baseline",
            geomean >= 2.0);
    } else {
        std::cout << "  [SHAPE SKIP] baseline not found at "
                  << baselinePath << " — recording only\n";
    }

    // ---- 2. Parallel sweep scaling ------------------------------------
    const unsigned hw = std::thread::hardware_concurrency();
    double serialWall = 0.0;
    double parWall = 0.0;
    double scaling = 0.0;
    if (hw < 2) {
        std::cout << "\n  [SHAPE SKIP] parallel scaling: host reports "
                  << hw << " hardware thread(s); a --jobs 4 speedup "
                  << "measurement would be noise\n";
    } else {
        const char* wls[] = {"leela", "x264", "gcc", "mcf", "xz"};
        const sim::Design designs[] = {
            sim::Design::TageL, sim::Design::Tourney, sim::Design::B2};
        const auto grid = [&](unsigned jobs) {
            sim::SweepEngine e(jobs);
            for (const char* wl : wls)
                for (sim::Design d : designs) {
                    sim::SweepPoint pt =
                        sim::SweepPoint::preset(d, cache.get(wl));
                    pt.cfg.warmupInsts = kWarmup;
                    pt.cfg.maxInsts = kMeasure;
                    e.add(std::move(pt));
                }
            const auto t0 = std::chrono::steady_clock::now();
            e.run();
            const auto t1 = std::chrono::steady_clock::now();
            return std::chrono::duration<double>(t1 - t0).count();
        };
        serialWall = grid(1);
        parWall = grid(4);
        scaling = parWall > 0.0 ? serialWall / parWall : 0.0;
        std::cout << "\n15-point sweep: jobs=1 "
                  << formatDouble(serialWall, 2) << " s, jobs=4 "
                  << formatDouble(parWall, 2) << " s, speedup "
                  << formatDouble(scaling, 2) << "x\n";
        // Full 3x target only where four real cores exist.
        const double target = hw >= 4 ? 3.0 : 1.2;
        ok &= bench::shapeCheck(
            "15-point sweep --jobs 4 speedup >= " +
                formatDouble(target, 1) + "x",
            scaling >= target);
    }

    // ---- JSON report ---------------------------------------------------
    try {
        std::filesystem::create_directories("bench_results");
        std::ofstream j("bench_results/bench_host_throughput.json");
        j << "{\n  \"bench\": \"host_throughput\",\n"
          << "  \"shape_ok\": " << (ok ? "true" : "false") << ",\n"
          << "  \"reps\": " << reps << ",\n"
          << "  \"warmup_insts\": " << kWarmup << ",\n"
          << "  \"measure_insts\": " << kMeasure << ",\n"
          << "  \"geomean_speedup\": " << geomean << ",\n"
          << "  \"hardware_threads\": " << hw << ",\n"
          << "  \"sweep_serial_seconds\": " << serialWall << ",\n"
          << "  \"sweep_jobs4_seconds\": " << parWall << ",\n"
          << "  \"sweep_scaling\": " << scaling << ",\n"
          << "  \"points\": [\n"
          << pointsJson.str() << "\n  ]\n}\n";
    } catch (const std::exception& e) {
        std::cerr << "[bench] JSON emit failed: " << e.what() << "\n";
    }

    return ok ? 0 : 1;
}
