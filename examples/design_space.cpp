/**
 * @file
 * Design-space exploration with the composer: sweep the TAGE storage
 * budget and compare against the fixed B2 and Tournament designs,
 * producing an accuracy-vs-storage Pareto table — the kind of
 * hardware-guided exploration COBRA is built for (paper §V).
 */

#include <iostream>

#include "common/table.hpp"
#include "components/bim.hpp"
#include "components/btb.hpp"
#include "components/tage.hpp"
#include "program/workload.hpp"
#include "sim/presets.hpp"
#include "sim/simulator.hpp"

using namespace cobra;
using namespace cobra::comps;

namespace {

bpu::Topology
scaledTage(unsigned sets_per_table)
{
    bpu::Topology topo;
    TageParams tp = TageParams::tageL(4);
    for (auto& t : tp.tables)
        t.sets = sets_per_table;
    auto* tage = topo.make<Tage>("TAGE", tp);

    BtbParams bp;
    bp.sets = 256;
    bp.ways = 2;
    bp.latency = 2;
    auto* btb = topo.make<Btb>("BTB", bp);

    HbimParams ip;
    ip.sets = 4096;
    ip.mode = IndexMode::Pc;
    ip.latency = 2;
    auto* bim = topo.make<Hbim>("BIM", ip);

    topo.setRoot(topo.chainOf({tage, btb, bim}));
    topo.validate();
    return topo;
}

} // namespace

int
main()
{
    const std::vector<std::string> workloads = {"gcc", "leela",
                                                "deepsjeng"};
    std::vector<prog::Program> programs;
    for (const auto& wl : workloads)
        programs.push_back(
            prog::buildWorkload(prog::WorkloadLibrary::profile(wl)));

    std::cout << "TAGE storage sweep (accuracy averaged over ";
    for (const auto& wl : workloads)
        std::cout << wl << " ";
    std::cout << ")\n\n";

    TextTable t;
    t.addRow({"Design", "Direction storage", "Mean accuracy",
              "Mean MPKI"});

    auto evaluate = [&](const std::string& name, auto makeTopo,
                        const sim::SimConfig& base) {
        double accSum = 0.0, mpkiSum = 0.0;
        std::uint64_t bits = 0;
        for (std::size_t i = 0; i < programs.size(); ++i) {
            bpu::Topology topo = makeTopo();
            if (i == 0)
                for (auto* c : topo.componentList())
                    if (c->name().find("BTB") == std::string::npos)
                        bits += c->storageBits();
            sim::SimConfig cfg = base;
            cfg.maxInsts = 120'000;
            cfg.warmupInsts = 40'000;
            sim::Simulator s(programs[i], std::move(topo), cfg);
            const auto r = s.run();
            accSum += r.accuracy();
            mpkiSum += r.mpki();
        }
        t.beginRow();
        t.cell(name);
        t.cell(formatKiB(bits));
        t.cell(accSum / programs.size(), 4);
        t.cell(mpkiSum / programs.size(), 2);
    };

    for (unsigned sets : {128u, 256u, 512u, 1024u, 2048u}) {
        sim::SimConfig cfg = sim::makeConfig(sim::Design::TageL);
        evaluate("TAGE/" + std::to_string(sets) + "-set",
                 [sets] { return scaledTage(sets); }, cfg);
    }
    evaluate("B2 (fixed)",
             [] { return sim::buildTopology(sim::Design::B2); },
             sim::makeConfig(sim::Design::B2));
    evaluate("Tournament (fixed)",
             [] { return sim::buildTopology(sim::Design::Tourney); },
             sim::makeConfig(sim::Design::Tourney));

    t.print(std::cout);
    std::cout << "\nLarger tagged tables keep paying off (paper: "
                 "predictor accuracy improves substantially with "
                 "storage budget [31]).\n";
    return 0;
}
