/**
 * @file
 * Reproduces the paper's Fig. 5 workflow: constructing a predictor
 * pipeline from a desired topology and available sub-components —
 *
 *   // Construct the predictor sub-components
 *   val loop    = Module(new LoopPred(nEntries=16))
 *   val gbim    = Module(new HBIM(useGlobal=true))
 *   val lbim    = Module(new HBIM(useLocal=true))
 *   val tourney = Module(new Tourney)
 *   // Express the edges of the topology ... (paper Fig. 5)
 *
 * and shows how the same components re-compose into the three
 * §IV-A1 integration variants with one-line changes.
 */

#include <iostream>

#include "common/table.hpp"
#include "components/bim.hpp"
#include "components/loop.hpp"
#include "components/tourney.hpp"
#include "program/workload.hpp"
#include "sim/simulator.hpp"

using namespace cobra;
using namespace cobra::comps;

namespace {

/** Which §IV-A1 integration to elaborate. */
enum class Variant { LoopOnGlobal, LoopOnLocal, LoopOnTop };

bpu::Topology
buildPipeline(Variant variant)
{
    bpu::Topology topo;

    // ---- Construct the predictor sub-components (Fig. 5) -------------
    LoopParams loopParams;
    loopParams.entries = 16;
    loopParams.latency = variant == Variant::LoopOnTop ? 3u : 2u;
    auto* loop = topo.make<LoopPredictor>("LOOP", loopParams);

    HbimParams gParams;
    gParams.sets = 2048;
    gParams.mode = IndexMode::GshareHash; // useGlobal=true
    gParams.latency = 2;
    auto* gbim = topo.make<Hbim>("GBIM", gParams);

    HbimParams lParams;
    lParams.sets = 1024;
    lParams.mode = IndexMode::LshareHash; // useLocal=true
    lParams.latency = 2;
    auto* lbim = topo.make<Hbim>("LBIM", lParams);

    TourneyParams tParams;
    tParams.sets = 1024;
    tParams.latency = 3;
    auto* tourney = topo.make<Tourney>("TOURNEY", tParams);

    // ---- Express the edges of the topology ---------------------------
    // Notice how the code can be modified to elaborate any of the
    // three pipelines described in §IV-A1 (the paper's observation).
    switch (variant) {
      case Variant::LoopOnGlobal:
        // TOURNEY3 > [(LOOP2 > GBIM2), LBIM2]
        topo.setRoot(topo.arb(
            tourney, {topo.chain({topo.leaf(loop), topo.leaf(gbim)}),
                      topo.leaf(lbim)}));
        break;
      case Variant::LoopOnLocal:
        // TOURNEY3 > [GBIM2, (LOOP2 > LBIM2)]
        topo.setRoot(topo.arb(
            tourney, {topo.leaf(gbim),
                      topo.chain({topo.leaf(loop), topo.leaf(lbim)})}));
        break;
      case Variant::LoopOnTop:
        // LOOP3 > TOURNEY3 > [GBIM2, LBIM2]  — the final prediction
        // comes from the loop predictor (Fig. 5's last line).
        topo.setRoot(topo.chain(
            {topo.leaf(loop),
             topo.arb(tourney, {topo.leaf(gbim), topo.leaf(lbim)})}));
        break;
    }
    topo.validate();
    return topo;
}

} // namespace

int
main()
{
    std::cout << "Fig. 5 / §IV-A1: one set of sub-components, three "
                 "topologies\n\n";

    const prog::Program program = prog::buildWorkload(
        prog::WorkloadLibrary::profile("exchange2"));

    for (Variant v : {Variant::LoopOnGlobal, Variant::LoopOnLocal,
                      Variant::LoopOnTop}) {
        bpu::Topology topo = buildPipeline(v);
        std::cout << topo.pipelineDiagram();

        sim::SimConfig cfg;
        cfg.bpu.ghistBits = 32;
        cfg.bpu.lhistSets = 256;
        cfg.bpu.lhistBits = 32;
        cfg.maxInsts = 150'000;
        cfg.warmupInsts = 50'000;
        sim::Simulator s(program, std::move(topo), cfg);
        const auto r = s.run();
        std::cout << "  accuracy " << formatDouble(r.accuracy(), 4)
                  << ", IPC " << formatDouble(r.ipc(), 3) << "\n\n";
    }
    return 0;
}
