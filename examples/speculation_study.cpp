/**
 * @file
 * A §VI-B-style speculation study: runs the same workload under the
 * three global-history repair policies and reports the speculative
 * machinery at work — wrong-path fetch, re-steers, history replays,
 * repair-walk events — the phenomena the paper argues trace-based
 * simulators cannot capture.
 */

#include <iostream>

#include "common/table.hpp"
#include "program/workload.hpp"
#include "sim/presets.hpp"
#include "sim/simulator.hpp"

using namespace cobra;

int
main(int argc, char** argv)
{
    const std::string wl = argc > 1 ? argv[1] : "leela";
    const prog::Program program =
        prog::buildWorkload(prog::WorkloadLibrary::profile(wl));
    std::cout << "Speculation study on '" << wl << "' with TAGE-L\n\n";

    TextTable t;
    t.addRow({"ghist policy", "IPC", "accuracy", "MPKI", "replays",
              "packets killed", "repair events"});

    for (bpu::GhistRepairMode mode :
         {bpu::GhistRepairMode::None, bpu::GhistRepairMode::RepairOnly,
          bpu::GhistRepairMode::RepairAndReplay}) {
        sim::SimConfig cfg = sim::makeConfig(sim::Design::TageL);
        cfg.frontend.ghistMode = mode;
        cfg.backend.ghistMode = mode;
        cfg.maxInsts = 200'000;
        cfg.warmupInsts = 50'000;
        sim::Simulator s(program,
                         sim::buildTopology(sim::Design::TageL), cfg);
        const auto r = s.run();

        t.beginRow();
        t.cell(bpu::ghistRepairModeName(mode));
        t.cell(r.ipc(), 3);
        t.cell(r.accuracy(), 4);
        t.cell(r.mpki(), 2);
        t.cell(r.ghistReplays);
        t.cell(r.packetsKilled);
        t.cell(s.bpu().stats().get("repair_events"));
    }
    t.print(std::cout);

    std::cout
        << "\nWrong-path fetch really happens in this model: after a\n"
           "mispredict, fetch continues down the wrong path, firing\n"
           "speculative updates into the predictors until the branch\n"
           "resolves; the history file's snapshots and the forwards-\n"
           "walk repair machinery then restore the state (paper "
           "§IV-B).\n";
    return 0;
}
