/**
 * @file
 * Quickstart: compose a TAGE-L predictor pipeline with the COBRA
 * composer, attach it to the BOOM-like core model, run a synthetic
 * workload, and print accuracy/IPC — the minimal end-to-end use of
 * the public API.
 */

#include <iostream>

#include "common/table.hpp"
#include "program/workload.hpp"
#include "sim/presets.hpp"
#include "sim/simulator.hpp"

int
main()
{
    using namespace cobra;

    // 1. Build a synthetic workload (a SPECint-proxy profile).
    prog::WorkloadProfile profile =
        prog::WorkloadLibrary::profile("leela");
    prog::Program program = prog::buildWorkload(profile);
    std::cout << "workload: " << program.name() << " ("
              << program.size() << " static insts, "
              << program.countOpClass(prog::OpClass::CondBranch)
              << " static branches)\n";

    // 2. Compose a predictor from the sub-component library.
    bpu::Topology topo = sim::buildTopology(sim::Design::TageL);
    std::cout << "topology: " << topo.describe() << "\n";
    std::cout << topo.pipelineDiagram();

    // 3. Attach it to the core model and run.
    sim::SimConfig cfg = sim::makeConfig(sim::Design::TageL);
    cfg.maxInsts = 300'000;
    cfg.warmupInsts = 50'000;
    sim::Simulator simulator(program, std::move(topo), cfg);
    const sim::SimResult r = simulator.run();

    // 4. Report.
    TextTable t("quickstart results");
    t.addRow({"metric", "value"});
    t.beginRow();
    t.cell("instructions");
    t.cell(r.insts);
    t.beginRow();
    t.cell("cycles");
    t.cell(r.cycles);
    t.beginRow();
    t.cell("IPC");
    t.cell(r.ipc());
    t.beginRow();
    t.cell("branch MPKI");
    t.cell(r.mpki());
    t.beginRow();
    t.cell("accuracy");
    t.cell(r.accuracy(), 4);
    t.print(std::cout);

    if (r.deadlocked) {
        std::cerr << "simulation deadlocked!\n";
        return 1;
    }
    return 0;
}
