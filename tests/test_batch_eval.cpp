/**
 * @file
 * Wavefront batch-evaluation tests: the batch evaluator is only
 * admissible as a search tier if every lane's TraceResult is
 * bit-identical to a solo serial TraceDrivenEvaluator walk of the
 * same design. The matrix: every library component kind, lane counts
 * {1, 3, 16}, warmup offsets, specialized vs generic lanes, worker
 * widths, the decoded-trace path, lane error isolation, and the
 * end-to-end search-driver property (the frontier artifact does not
 * change when tier-0/1 evaluation is batched).
 */

#include <filesystem>
#include <memory>
#include <string>
#include <unistd.h>
#include <vector>

#include <gtest/gtest.h>

#include "bpu/topology.hpp"
#include "components/bim.hpp"
#include "components/gtag.hpp"
#include "components/ittage.hpp"
#include "components/loop.hpp"
#include "components/perceptron.hpp"
#include "components/stat_corrector.hpp"
#include "components/tage.hpp"
#include "components/tourney.hpp"
#include "components/yags.hpp"
#include "guard/errors.hpp"
#include "program/workload.hpp"
#include "search/driver.hpp"
#include "sim/presets.hpp"
#include "trace/batch_eval.hpp"
#include "trace/replay.hpp"
#include "trace/trace.hpp"

using namespace cobra;

namespace {

prog::WorkloadCache&
cache()
{
    static prog::WorkloadCache c;
    return c;
}

const trace::BranchTrace&
sharedTrace()
{
    static const trace::BranchTrace tr =
        trace::recordTrace(cache().get("mcf"), 6'000);
    return tr;
}

/**
 * One single-kind pipeline per library component: a chain of the
 * component over a small bimodal base (arbiters get two bases to
 * choose among). Factories are pure — safe to call on any worker.
 */
struct KindLane
{
    const char* kind;
    std::function<bpu::ComposedPredictor()> make;
};

comps::HbimParams
smallBim(comps::IndexMode mode = comps::IndexMode::Pc)
{
    comps::HbimParams p;
    p.sets = 256;
    p.mode = mode;
    p.latency = 2;
    return p;
}

template <typename Comp, typename Params>
std::function<bpu::ComposedPredictor()>
overBim(Params p)
{
    return [p] {
        bpu::Topology topo;
        auto* c = topo.make<Comp>("C", p);
        auto* base = topo.make<comps::Hbim>("BIM", smallBim());
        topo.setRoot(topo.chainOf({c, base}));
        return bpu::ComposedPredictor(std::move(topo), 4);
    };
}

std::vector<KindLane>
kindLanes()
{
    std::vector<KindLane> lanes;
    lanes.push_back({"bim", [] {
                         bpu::Topology topo;
                         auto* b = topo.make<comps::Hbim>(
                             "BIM", smallBim());
                         topo.setRoot(topo.leaf(b));
                         return bpu::ComposedPredictor(std::move(topo),
                                                       4);
                     }});
    lanes.push_back(
        {"gshare", overBim<comps::Hbim>(
                       smallBim(comps::IndexMode::GshareHash))});
    {
        comps::GtagParams p;
        p.sets = 128;
        lanes.push_back({"gtag", overBim<comps::Gtag>(p)});
    }
    lanes.push_back(
        {"tage", overBim<comps::Tage>(comps::TageParams::tageL(4))});
    {
        comps::PerceptronParams p;
        p.entries = 128;
        lanes.push_back({"perceptron", overBim<comps::Perceptron>(p)});
    }
    {
        comps::LoopParams p;
        p.entries = 64;
        lanes.push_back({"loop", overBim<comps::LoopPredictor>(p)});
    }
    {
        comps::YagsParams p;
        p.choiceSets = 256;
        p.cacheSets = 128;
        lanes.push_back({"yags", overBim<comps::Yags>(p)});
    }
    {
        comps::IttageParams p;
        p.sets = 64;
        lanes.push_back({"ittage", overBim<comps::Ittage>(p)});
    }
    {
        comps::TourneyParams p;
        p.sets = 256;
        lanes.push_back({"tourney", [p] {
                             bpu::Topology topo;
                             auto* t = topo.make<comps::Tourney>("T", p);
                             auto* g = topo.make<comps::Hbim>(
                                 "G", smallBim(
                                          comps::IndexMode::GshareHash));
                             auto* l = topo.make<comps::Hbim>(
                                 "L", smallBim(
                                          comps::IndexMode::LocalHist));
                             topo.setRoot(topo.arb(
                                 t, {topo.leaf(g), topo.leaf(l)}));
                             return bpu::ComposedPredictor(
                                 std::move(topo), 4);
                         }});
    }
    {
        comps::StatCorrectorParams p;
        p.sets = 128;
        lanes.push_back({"stat_corrector",
                         overBim<comps::StatCorrector>(p)});
    }
    return lanes;
}

/** Solo reference walk of the same design (per-stage, generic). */
trace::TraceResult
serialResult(const std::function<bpu::ComposedPredictor()>& make,
             std::size_t warmup, unsigned ghist_bits = 64,
             unsigned lhist_bits = 32)
{
    trace::TraceDrivenEvaluator ev(make(), ghist_bits, lhist_bits);
    return ev.evaluate(sharedTrace(), warmup);
}

void
expectSame(const trace::TraceResult& a, const trace::TraceResult& b,
           const std::string& what)
{
    EXPECT_EQ(a.branches, b.branches) << what;
    EXPECT_EQ(a.mispredicts, b.mispredicts) << what;
}

} // namespace

// ---------------------------------------------------------------------
// Bit identity
// ---------------------------------------------------------------------

TEST(BatchEval, EveryComponentKindMatchesSerial)
{
    const std::vector<KindLane> kinds = kindLanes();
    trace::BatchTraceEvaluator be(1);
    for (const KindLane& k : kinds) {
        trace::BatchLane lane;
        lane.label = k.kind;
        lane.predictor = k.make;
        be.addLane(std::move(lane));
    }
    const auto outs = be.evaluate(sharedTrace(), 1'000);
    ASSERT_EQ(outs.size(), kinds.size());
    for (std::size_t i = 0; i < kinds.size(); ++i) {
        ASSERT_TRUE(outs[i].ok()) << outs[i].error;
        expectSame(outs[i].result, serialResult(kinds[i].make, 1'000),
                   kinds[i].kind);
    }
}

TEST(BatchEval, LaneCountsAndWarmupOffsetsMatchSerial)
{
    // Identity must hold for any lane count (1 = degenerate batch,
    // 3 = partial wavefront, 16 = two default chunks) and any warmup
    // boundary, including 0 and a warmup past the trace end.
    const std::vector<KindLane> kinds = kindLanes();
    for (unsigned lanes : {1u, 3u, 16u}) {
        for (std::size_t warmup : {std::size_t{0}, std::size_t{1'500},
                                   std::size_t{100'000}}) {
            trace::BatchTraceEvaluator be(1);
            for (unsigned k = 0; k < lanes; ++k) {
                trace::BatchLane lane;
                lane.label = kinds[k % kinds.size()].kind;
                lane.predictor = kinds[k % kinds.size()].make;
                be.addLane(std::move(lane));
            }
            const auto outs = be.evaluate(sharedTrace(), warmup);
            ASSERT_EQ(outs.size(), lanes);
            for (unsigned k = 0; k < lanes; ++k) {
                ASSERT_TRUE(outs[k].ok()) << outs[k].error;
                expectSame(
                    outs[k].result,
                    serialResult(kinds[k % kinds.size()].make, warmup),
                    outs[k].label + " lanes=" + std::to_string(lanes) +
                        " warmup=" + std::to_string(warmup));
            }
        }
    }
}

TEST(BatchEval, SpecializedLanesMatchGenericSerial)
{
    // Preset tuples are registered with the devirtualization
    // registry, so their lanes must take the specialized loop — and
    // still reproduce the generic serial walk exactly. A lane with
    // specialization disabled stays generic and matches too.
    for (bool specialize : {true, false}) {
        trace::BatchTraceEvaluator be(1);
        be.setSpecialize(specialize);
        std::vector<std::function<bpu::ComposedPredictor()>> makes;
        for (sim::Design d : {sim::Design::Tourney, sim::Design::B2,
                              sim::Design::TageL}) {
            const sim::DesignSpec spec = sim::presetSpec(d);
            makes.push_back([spec] {
                return bpu::ComposedPredictor(sim::buildTopology(spec),
                                              spec.fetchWidth);
            });
            trace::BatchLane lane;
            lane.label = spec.name;
            lane.ghistBits = spec.bpu.ghistBits;
            lane.lhistBits = spec.bpu.lhistBits;
            lane.predictor = makes.back();
            be.addLane(std::move(lane));
        }
        const auto outs = be.evaluate(sharedTrace(), 1'000);
        ASSERT_EQ(outs.size(), makes.size());
        for (std::size_t i = 0; i < outs.size(); ++i) {
            ASSERT_TRUE(outs[i].ok()) << outs[i].error;
            EXPECT_EQ(outs[i].loop,
                      specialize ? "specialized" : "generic");
            expectSame(outs[i].result,
                       serialResult(makes[i], 1'000),
                       outs[i].label);
        }
    }
}

TEST(BatchEval, WorkerWidthDoesNotChangeResults)
{
    const std::vector<KindLane> kinds = kindLanes();
    auto runAt = [&](unsigned jobs) {
        trace::BatchTraceEvaluator be(jobs);
        be.setChunkLanes(3); // Several chunks even at 10 lanes.
        for (const KindLane& k : kinds) {
            trace::BatchLane lane;
            lane.label = k.kind;
            lane.predictor = k.make;
            be.addLane(std::move(lane));
        }
        return be.evaluate(sharedTrace(), 1'000);
    };
    const auto one = runAt(1);
    const auto four = runAt(4);
    ASSERT_EQ(one.size(), four.size());
    for (std::size_t i = 0; i < one.size(); ++i) {
        ASSERT_TRUE(one[i].ok() && four[i].ok());
        EXPECT_EQ(one[i].label, four[i].label);
        expectSame(one[i].result, four[i].result, one[i].label);
    }
}

TEST(BatchEval, FusedPredictMatchesPerStageReference)
{
    // The lane fast path (ComposedPredictor::evaluatePacket) against
    // the per-stage reference walk, same evaluator class, lockstep.
    for (const KindLane& k : kindLanes()) {
        trace::TraceDrivenEvaluator ref(k.make());
        trace::TraceDrivenEvaluator fused(k.make());
        fused.setFusedPredict(true);
        EXPECT_TRUE(fused.fusedPredict());
        const trace::TraceResult a = ref.evaluate(sharedTrace(), 500);
        const trace::TraceResult b = fused.evaluate(sharedTrace(), 500);
        expectSame(a, b, k.kind);
    }
}

TEST(BatchEval, DecodedTracePathMatchesSerial)
{
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("cobra_batch_eval." + std::to_string(::getpid()));
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    const std::string path = (dir / "mcf.cbtr").string();
    trace::captureTrace(cache().get("mcf"), path, 20'000);
    const std::shared_ptr<const trace::DecodedTrace> dec =
        trace::loadTrace(path);

    const std::vector<KindLane> kinds = kindLanes();
    trace::BatchTraceEvaluator be(1);
    for (const KindLane& k : kinds) {
        trace::BatchLane lane;
        lane.label = k.kind;
        lane.predictor = k.make;
        be.addLane(std::move(lane));
    }
    const auto outs = be.evaluate(*dec, 500);
    for (std::size_t i = 0; i < kinds.size(); ++i) {
        ASSERT_TRUE(outs[i].ok()) << outs[i].error;
        trace::TraceDrivenEvaluator ev(kinds[i].make());
        expectSame(outs[i].result, ev.evaluate(*dec, 500),
                   kinds[i].kind);
    }
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// Error isolation
// ---------------------------------------------------------------------

TEST(BatchEval, FailedLaneDoesNotDisturbTheOthers)
{
    const std::vector<KindLane> kinds = kindLanes();
    trace::BatchTraceEvaluator be(1);
    {
        trace::BatchLane ok;
        ok.label = "good-a";
        ok.predictor = kinds[0].make;
        be.addLane(std::move(ok));
    }
    {
        trace::BatchLane bad;
        bad.label = "bad";
        bad.predictor = []() -> bpu::ComposedPredictor {
            throw guard::ConfigError("intentionally broken lane");
        };
        be.addLane(std::move(bad));
    }
    {
        trace::BatchLane ok;
        ok.label = "good-b";
        ok.predictor = kinds[3].make;
        be.addLane(std::move(ok));
    }
    const auto outs = be.evaluate(sharedTrace(), 1'000);
    ASSERT_EQ(outs.size(), 3u);
    EXPECT_FALSE(outs[1].ok());
    EXPECT_EQ(outs[1].errorClass, "config");
    EXPECT_NE(outs[1].error.find("intentionally broken"),
              std::string::npos);
    ASSERT_NE(outs[1].exception, nullptr);
    EXPECT_THROW(std::rethrow_exception(outs[1].exception),
                 guard::ConfigError);
    ASSERT_TRUE(outs[0].ok());
    ASSERT_TRUE(outs[2].ok());
    expectSame(outs[0].result, serialResult(kinds[0].make, 1'000),
               "good-a");
    expectSame(outs[2].result, serialResult(kinds[3].make, 1'000),
               "good-b");
}

// ---------------------------------------------------------------------
// Search-driver determinism
// ---------------------------------------------------------------------

TEST(BatchEval, SearchFrontierArtifactUnchangedByBatching)
{
    search::SearchConfig cfg;
    cfg.seed = 7;
    cfg.pool = 8;
    cfg.workloads = {"mcf"};
    cfg.seedEvals = 4;
    cfg.functionalSurvivors = 5;
    cfg.warpSurvivors = 2;
    cfg.finalists = 1;
    cfg.traceBranches = 10'000;
    cfg.traceWarmup = 2'000;
    cfg.warpInsts = 40'000;
    cfg.warpIntervals = 2;
    cfg.detailInsts = 60'000;
    cfg.detailWarmup = 10'000;

    cfg.batchEval = false;
    cfg.jobs = 1;
    const search::SearchResult serial = search::runSearch(cfg, cache());

    cfg.batchEval = true;
    const search::SearchResult batched = search::runSearch(cfg, cache());

    cfg.jobs = 4;
    const search::SearchResult wide = search::runSearch(cfg, cache());

    EXPECT_EQ(search::frontierJson(serial),
              search::frontierJson(batched));
    EXPECT_EQ(search::frontierJson(serial), search::frontierJson(wide));
    EXPECT_EQ(serial.frontier, batched.frontier);
}
