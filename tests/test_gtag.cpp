#include <gtest/gtest.h>

#include "components/gtag.hpp"
#include "test_util.hpp"

namespace cobra::comps {
namespace {

GtagParams
smallGtag()
{
    GtagParams p;
    p.sets = 128;
    p.histBits = 10;
    p.latency = 3;
    p.fetchWidth = 4;
    return p;
}

TEST(Gtag, ColdMissPassesThrough)
{
    Gtag g("GTAG", smallGtag());
    HistoryRegister gh(64);
    bpu::PredictContext ctx;
    ctx.pc = 0x5000;
    ctx.validSlots = 4;
    ctx.ghist = &gh;
    bpu::PredictionBundle b;
    b.width = 4;
    b.slots[0].valid = true;
    b.slots[0].taken = true;
    bpu::Metadata meta{};
    g.predict(ctx, b, meta);
    EXPECT_TRUE(b.slots[0].taken) << "pass-through must keep input";
    EXPECT_EQ(meta[0] & 1, 0u) << "metadata records the miss";
}

TEST(Gtag, AllocatesOnMispredictThenHits)
{
    Gtag g("GTAG", smallGtag());
    test::SingleBranchDriver drv(g, 0x5000, 1);
    // Periodic pattern the base (static not-taken) mispredicts on.
    const auto outs = test::periodicOutcomes(0b0111, 4, 6000);
    EXPECT_GT(drv.accuracy(outs), 0.9);
}

TEST(Gtag, LearnsHistoryCorrelation)
{
    Gtag g("GTAG", smallGtag());
    test::SingleBranchDriver drv(g, 0x5000, 0);
    const auto outs = test::historyCorrelatedOutcomes(5, 8000);
    EXPECT_GT(drv.accuracy(outs), 0.9);
}

TEST(Gtag, TagMissDoesNotTrainForeignEntry)
{
    // Two branches with identical index but different tags must not
    // train each other (that is the point of the partial tag).
    Gtag g("GTAG", smallGtag());
    HistoryRegister gh(64);

    auto predictAndUpdate = [&](Addr pc, bool actual) {
        bpu::PredictContext ctx;
        ctx.pc = pc;
        ctx.validSlots = 4;
        ctx.ghist = &gh;
        bpu::PredictionBundle b;
        b.width = 4;
        b.slots[0].valid = true;
        b.slots[0].taken = false;
        bpu::Metadata meta{};
        g.predict(ctx, b, meta);
        const bool pred = b.slots[0].taken;
        bpu::ResolveEvent ev;
        ev.pc = pc;
        ev.ghist = &gh;
        ev.meta = &meta;
        ev.brMask[0] = true;
        ev.takenMask[0] = actual;
        ev.mispredicted = pred != actual;
        ev.predicted = &b;
        g.update(ev);
        return pred;
    };

    // Keep history constant (no pushes) so indices stay fixed.
    const Addr pcA = 0x5000;
    for (int i = 0; i < 50; ++i)
        predictAndUpdate(pcA, true);
    EXPECT_TRUE(predictAndUpdate(pcA, true));

    // A far-away PC with the same low index bits cannot hit A's tag.
    const Addr pcB = pcA + 128ull * 16 * 1024; // same set index class
    bpu::PredictContext ctx;
    ctx.pc = pcB;
    ctx.validSlots = 4;
    ctx.ghist = &gh;
    bpu::PredictionBundle b;
    b.width = 4;
    bpu::Metadata meta{};
    g.predict(ctx, b, meta);
    // Either it misses (different tag) or, if the 7-bit tags collide,
    // this test address must be adjusted; for these constants they
    // differ.
    EXPECT_EQ(meta[0] & 1, 0u);
}

TEST(Gtag, MetadataCountersRoundTrip)
{
    Gtag g("GTAG", smallGtag());
    test::SingleBranchDriver drv(g, 0x5000, 2);
    for (int i = 0; i < 200; ++i)
        drv.round(true);
    // After training, a predict must report hit + counters in meta.
    HistoryRegister gh = drv.ghist();
    bpu::PredictContext ctx;
    ctx.pc = 0x5000;
    ctx.validSlots = 4;
    ctx.ghist = &gh;
    bpu::PredictionBundle b;
    b.width = 4;
    bpu::Metadata meta{};
    g.predict(ctx, b, meta);
    if ((meta[0] >> 2) & 1) { // slot-2 hit bit
        const unsigned ctr2 = (meta[0] >> (8 + 2 * 2)) & 3;
        EXPECT_GE(ctr2, 2u) << "trained-taken counter in metadata";
    }
}

TEST(Gtag, StorageAccounting)
{
    GtagParams p = smallGtag();
    Gtag g("GTAG", p);
    const std::uint64_t perCtr = p.tagBits + 1 + p.ctrBits;
    EXPECT_EQ(g.storageBits(), perCtr * p.sets * 4);
}

} // namespace
} // namespace cobra::comps
