#include <gtest/gtest.h>

#include "program/workload.hpp"

namespace cobra::prog {
namespace {

TEST(WorkloadLibrary, Specint17Complete)
{
    const auto names = WorkloadLibrary::specint17();
    ASSERT_EQ(names.size(), 10u);
    for (const auto& n : names)
        EXPECT_NO_THROW(WorkloadLibrary::profile(n)) << n;
}

TEST(WorkloadLibrary, AblationProxiesPresent)
{
    EXPECT_NO_THROW(WorkloadLibrary::profile("dhrystone"));
    EXPECT_NO_THROW(WorkloadLibrary::profile("coremark"));
}

TEST(WorkloadLibrary, UnknownThrows)
{
    EXPECT_THROW(WorkloadLibrary::profile("nonesuch"),
                 std::out_of_range);
}

TEST(Workload, BuildDeterministic)
{
    const auto prof = WorkloadLibrary::profile("gcc");
    const Program a = buildWorkload(prof);
    const Program b = buildWorkload(prof);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        const auto& ia = a.at(a.pcOf(i));
        const auto& ib = b.at(b.pcOf(i));
        ASSERT_EQ(ia.op, ib.op) << i;
        ASSERT_EQ(ia.target, ib.target) << i;
    }
}

TEST(Workload, SeedChangesLayout)
{
    auto prof = WorkloadLibrary::profile("gcc");
    const Program a = buildWorkload(prof);
    prof.seed ^= 0x1234567;
    const Program b = buildWorkload(prof);
    // Same shape parameters but different sampled content.
    bool differs = a.size() != b.size();
    for (std::size_t i = 0; !differs && i < a.size(); ++i)
        differs = a.at(a.pcOf(i)).op != b.at(b.pcOf(i)).op;
    EXPECT_TRUE(differs);
}

TEST(Workload, EveryProfileBuildsValidProgram)
{
    for (const auto& name : WorkloadLibrary::all()) {
        const Program p = buildWorkload(WorkloadLibrary::profile(name));
        EXPECT_GT(p.size(), 50u) << name;
        EXPECT_TRUE(p.contains(p.entry())) << name;
        EXPECT_GT(p.countOpClass(OpClass::CondBranch), 5u) << name;
        // Every direct CF target must be inside the image.
        for (std::size_t i = 0; i < p.size(); ++i) {
            const auto& si = p.at(p.pcOf(i));
            if (si.target != kInvalidAddr)
                EXPECT_TRUE(p.contains(si.target))
                    << name << " @" << i;
            if (si.op == OpClass::CondBranch)
                EXPECT_NE(si.behaviorId, kNoBehavior) << name;
        }
    }
}

TEST(Workload, IndirectTargetsResolved)
{
    const Program p =
        buildWorkload(WorkloadLibrary::profile("omnetpp"));
    std::size_t sites = 0;
    for (std::size_t i = 0; i < p.size(); ++i) {
        const auto& si = p.at(p.pcOf(i));
        if (si.op != OpClass::IndirectJump)
            continue;
        ++sites;
        const auto& b = p.indirectBehavior(si.behaviorId);
        EXPECT_FALSE(b.targets.empty());
        for (Addr t : b.targets)
            EXPECT_TRUE(p.contains(t));
    }
    EXPECT_GT(sites, 0u) << "omnetpp should contain switches";
}

TEST(Workload, MemStreamsAttached)
{
    const Program p = buildWorkload(WorkloadLibrary::profile("mcf"));
    EXPECT_GT(p.numMemStreams(), 0u);
    std::size_t loadsWithStreams = 0;
    for (std::size_t i = 0; i < p.size(); ++i) {
        const auto& si = p.at(p.pcOf(i));
        if (si.op == OpClass::Load && si.memStreamId != kNoMemStream)
            ++loadsWithStreams;
    }
    EXPECT_GT(loadsWithStreams, 0u);
}

TEST(Workload, CoremarkHammockHeavy)
{
    const Program p =
        buildWorkload(WorkloadLibrary::profile("coremark"));
    std::size_t sfbEligible = 0;
    for (std::size_t i = 0; i < p.size(); ++i)
        sfbEligible += p.at(p.pcOf(i)).sfbEligible;
    EXPECT_GT(sfbEligible, 10u)
        << "the SFB showcase needs short hammocks";
}

} // namespace
} // namespace cobra::prog
