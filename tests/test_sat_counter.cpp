#include <gtest/gtest.h>

#include "common/sat_counter.hpp"

namespace cobra {
namespace {

TEST(SatCounter, SaturatesHigh)
{
    SatCounter c(2, 0);
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.value(), 3);
    EXPECT_TRUE(c.taken());
    EXPECT_TRUE(c.saturated());
}

TEST(SatCounter, SaturatesLow)
{
    SatCounter c(2, 3);
    for (int i = 0; i < 10; ++i)
        c.decrement();
    EXPECT_EQ(c.value(), 0);
    EXPECT_FALSE(c.taken());
    EXPECT_TRUE(c.saturated());
}

TEST(SatCounter, TakenThreshold)
{
    SatCounter c(2, 0);
    EXPECT_FALSE(c.taken()); // 0
    c.increment();
    EXPECT_FALSE(c.taken()); // 1
    c.increment();
    EXPECT_TRUE(c.taken()); // 2
    c.increment();
    EXPECT_TRUE(c.taken()); // 3
}

TEST(SatCounter, TrainMovesTowardOutcome)
{
    SatCounter c(3, 4);
    c.train(true);
    EXPECT_EQ(c.value(), 5);
    c.train(false);
    c.train(false);
    EXPECT_EQ(c.value(), 3);
}

TEST(SatCounter, SetClamps)
{
    SatCounter c(2);
    c.set(17);
    EXPECT_EQ(c.value(), 3);
}

TEST(SatCounter, ConfidenceExtremes)
{
    SatCounter c(2, 3);
    EXPECT_DOUBLE_EQ(c.confidence(), 1.0);
    c.set(0);
    EXPECT_DOUBLE_EQ(c.confidence(), 1.0);
    c.set(2);
    EXPECT_LT(c.confidence(), 0.6);
}

TEST(SatCounter, WidthsUpTo16)
{
    for (unsigned n = 1; n <= 16; ++n) {
        SatCounter c(n, 0);
        EXPECT_EQ(c.maxValue(), maskBits(n));
        for (unsigned i = 0; i <= c.maxValue() + 2u; ++i)
            c.increment();
        EXPECT_EQ(c.value(), c.maxValue());
    }
}

TEST(SignedSatCounter, Range)
{
    SignedSatCounter c(3, 0);
    EXPECT_EQ(c.minValue(), -4);
    EXPECT_EQ(c.maxValue(), 3);
    for (int i = 0; i < 10; ++i)
        c.add(1);
    EXPECT_EQ(c.value(), 3);
    for (int i = 0; i < 20; ++i)
        c.add(-1);
    EXPECT_EQ(c.value(), -4);
}

TEST(SignedSatCounter, PositiveAtZero)
{
    SignedSatCounter c(4, 0);
    EXPECT_TRUE(c.positive());
    c.add(-1);
    EXPECT_FALSE(c.positive());
}

TEST(SignedSatCounter, SetClamps)
{
    SignedSatCounter c(3);
    c.set(100);
    EXPECT_EQ(c.value(), 3);
    c.set(-100);
    EXPECT_EQ(c.value(), -4);
}

} // namespace
} // namespace cobra
