#include <gtest/gtest.h>

#include "common/random.hpp"

namespace cobra {
namespace {

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = r.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        sawLo |= v == -3;
        sawHi |= v == 3;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceFrequency)
{
    Rng r(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, GeometricBounds)
{
    Rng r(15);
    for (int i = 0; i < 500; ++i) {
        const unsigned k = r.geometric(0.5, 8);
        EXPECT_GE(k, 1u);
        EXPECT_LE(k, 8u);
    }
}

} // namespace
} // namespace cobra
