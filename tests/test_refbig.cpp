/**
 * @file
 * Tests for the REF-BIG commercial-class stand-in (Table III
 * substitute): its enlarged predictor and wider core must actually
 * dominate the TAGE-L baseline, or Fig. 10's reference column would
 * be meaningless.
 */

#include <gtest/gtest.h>

#include "program/workload.hpp"
#include "sim/presets.hpp"
#include "sim/simulator.hpp"

namespace cobra::sim {
namespace {

TEST(RefBig, MorePredictorStorageThanTageL)
{
    bpu::Topology ref = buildTopology(Design::RefBig);
    bpu::Topology tagel = buildTopology(Design::TageL);
    std::uint64_t refBits = 0, tagelBits = 0;
    for (auto* c : ref.componentList())
        refBits += c->storageBits();
    for (auto* c : tagel.componentList())
        tagelBits += c->storageBits();
    EXPECT_GT(refBits, 2 * tagelBits);
}

TEST(RefBig, BeatsTageLOnHardWorkload)
{
    const prog::Program p = prog::buildWorkload(
        prog::WorkloadLibrary::profile("leela"));
    SimConfig refCfg = makeConfig(Design::RefBig);
    refCfg.maxInsts = 40'000;
    refCfg.warmupInsts = 15'000;
    Simulator ref(p, buildTopology(Design::RefBig), refCfg);
    const auto rRef = ref.run();

    SimConfig baseCfg = makeConfig(Design::TageL);
    baseCfg.maxInsts = 40'000;
    baseCfg.warmupInsts = 15'000;
    Simulator base(p, buildTopology(Design::TageL), baseCfg);
    const auto rBase = base.run();

    EXPECT_FALSE(rRef.deadlocked);
    EXPECT_GT(rRef.ipc(), rBase.ipc())
        << "the wider core must deliver more IPC";
    EXPECT_GE(rRef.accuracy(), rBase.accuracy() - 0.01)
        << "the larger predictor must not lose accuracy";
}

TEST(RefBig, WiderCoreRaisesIlpCeiling)
{
    // On the most ILP-rich proxy the 6-wide core must clearly beat
    // the 4-wide one.
    const prog::Program p = prog::buildWorkload(
        prog::WorkloadLibrary::profile("exchange2"));
    SimConfig refCfg = makeConfig(Design::RefBig);
    refCfg.maxInsts = 40'000;
    refCfg.warmupInsts = 15'000;
    Simulator ref(p, buildTopology(Design::RefBig), refCfg);
    SimConfig baseCfg = makeConfig(Design::TageL);
    baseCfg.maxInsts = 40'000;
    baseCfg.warmupInsts = 15'000;
    Simulator base(p, buildTopology(Design::TageL), baseCfg);
    EXPECT_GT(ref.run().ipc(), base.run().ipc() * 1.05);
}

} // namespace
} // namespace cobra::sim
