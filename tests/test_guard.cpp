/**
 * @file
 * SimGuard tests: structured config validation, the ContractAuditor
 * catching deliberately broken components, the deadlock watchdog's
 * post-mortem, and graceful degradation under fault injection.
 */

#include <gtest/gtest.h>

#include "guard/contract_auditor.hpp"
#include "guard/errors.hpp"
#include "guard/fault_injector.hpp"
#include "guard/post_mortem.hpp"
#include "program/workload.hpp"
#include "sim/presets.hpp"
#include "sim/simulator.hpp"

namespace cobra {
namespace {

// ---- Config validation --------------------------------------------------

TEST(GuardConfig, ZeroFetchWidthRejected)
{
    sim::SimConfig cfg = sim::makeConfig(sim::Design::TageL);
    cfg.frontend.fetchWidth = 0;
    EXPECT_THROW(cfg.validate(), guard::ConfigError);
}

TEST(GuardConfig, WarmupBeyondBudgetRejectedOnlyWhenStrict)
{
    sim::SimConfig cfg = sim::makeConfig(sim::Design::B2);
    cfg.warmupInsts = 20'000;
    cfg.maxInsts = 10'000;
    EXPECT_THROW(cfg.validate(/*strict=*/true), guard::ConfigError);
    // A warmup-dominated run is a legitimate deliberate experiment.
    EXPECT_NO_THROW(cfg.validate(/*strict=*/false));
}

TEST(GuardConfig, ZeroDeadlockThresholdRejected)
{
    sim::SimConfig cfg = sim::makeConfig(sim::Design::B2);
    cfg.deadlockCycles = 0;
    EXPECT_THROW(cfg.validate(/*strict=*/false), guard::ConfigError);
}

TEST(GuardConfig, FaultRateMustBeProbability)
{
    sim::SimConfig cfg = sim::makeConfig(sim::Design::B2);
    cfg.faultRate = 1.5;
    EXPECT_THROW(cfg.validate(), guard::ConfigError);
}

TEST(GuardConfig, BpuInvariantsRejected)
{
    bpu::BpuConfig b;
    b.walkWidth = 0;
    EXPECT_THROW(b.validate(), guard::ConfigError);

    bpu::BpuConfig c;
    c.historyFileEntries = 1;
    EXPECT_THROW(c.validate(), guard::ConfigError);
}

TEST(GuardConfig, PresetConfigsAreValid)
{
    for (sim::Design d : sim::paperDesigns())
        EXPECT_NO_THROW(sim::makeConfig(d).validate());
}

TEST(GuardConfig, ErrorsDeriveFromLogicError)
{
    // Legacy call sites catch std::logic_error; the hierarchy must
    // stay substitutable.
    try {
        throw guard::ConfigError("field", "detail");
    } catch (const std::logic_error& e) {
        EXPECT_NE(std::string(e.what()).find("field"),
                  std::string::npos);
    }
}

// ---- ContractAuditor ----------------------------------------------------

/** Minimal benign component with configurable latency. */
class BenignMock : public bpu::PredictorComponent
{
  public:
    explicit BenignMock(unsigned latency)
        : PredictorComponent("BENIGN", latency, 4)
    {
    }

    void predict(const bpu::PredictContext&, bpu::PredictionBundle&,
                 bpu::Metadata&) override
    {
    }

    std::uint64_t storageBits() const override { return 0; }
};

/** Declares metaBits() = 4 but writes 16 bits of metadata. */
class MetaWidthLiar : public bpu::PredictorComponent
{
  public:
    MetaWidthLiar() : PredictorComponent("LIAR", 2, 4) {}

    unsigned metaBits() const override { return 4; }

    void predict(const bpu::PredictContext&, bpu::PredictionBundle&,
                 bpu::Metadata& meta) override
    {
        meta[0] = 0xFFFF; // 16 bits set, 4 declared.
    }

    std::uint64_t storageBits() const override { return 0; }
};

/**
 * Saves the writable fire-time metadata pointer so the test can mutate
 * the history-file copy between fire and update — the §III-D
 * round-trip violation the auditor must catch.
 */
class MetaLeakMock : public bpu::PredictorComponent
{
  public:
    MetaLeakMock() : PredictorComponent("MOCK", 2, 4) {}

    unsigned metaBits() const override { return 16; }

    void predict(const bpu::PredictContext&, bpu::PredictionBundle&,
                 bpu::Metadata& meta) override
    {
        meta[0] = 0xBEEF;
    }

    void fire(const bpu::FireEvent& ev) override { saved = ev.meta; }

    std::uint64_t storageBits() const override { return 0; }

    bpu::Metadata* saved = nullptr;
};

bpu::PredictContext
stageContext(unsigned stage, const HistoryRegister* gh,
             std::uint64_t serial)
{
    bpu::PredictContext ctx;
    ctx.pc = 0x1000;
    ctx.validSlots = 4;
    ctx.stage = stage;
    ctx.ghist = gh;
    ctx.serial = serial;
    return ctx;
}

TEST(ContractAuditor, PredictBeforeLatencyCaught)
{
    guard::ContractAuditor a(std::make_unique<BenignMock>(2));
    bpu::PredictionBundle b;
    bpu::Metadata m{};
    HistoryRegister gh(8);
    auto ctx = stageContext(1, &gh, 1);
    EXPECT_THROW(a.predict(ctx, b, m), guard::ContractViolation);
}

TEST(ContractAuditor, GhistLeakAtStageOneCaught)
{
    guard::ContractAuditor a(std::make_unique<BenignMock>(1));
    bpu::PredictionBundle b;
    bpu::Metadata m{};
    HistoryRegister gh(8);
    auto ctx = stageContext(1, &gh, 1);
    EXPECT_THROW(a.predict(ctx, b, m), guard::ContractViolation);
}

TEST(ContractAuditor, MissingGhistAtLateStageCaught)
{
    guard::ContractAuditor a(std::make_unique<BenignMock>(2));
    bpu::PredictionBundle b;
    bpu::Metadata m{};
    auto ctx = stageContext(2, nullptr, 1);
    EXPECT_THROW(a.predict(ctx, b, m), guard::ContractViolation);
}

TEST(ContractAuditor, DoublePredictCaught)
{
    guard::ContractAuditor a(std::make_unique<BenignMock>(2));
    bpu::PredictionBundle b;
    bpu::Metadata m{};
    HistoryRegister gh(8);
    auto ctx = stageContext(2, &gh, 7);
    EXPECT_NO_THROW(a.predict(ctx, b, m));
    EXPECT_THROW(a.predict(ctx, b, m), guard::ContractViolation);
}

TEST(ContractAuditor, MetaWidthOverflowCaught)
{
    guard::ContractAuditor a(std::make_unique<MetaWidthLiar>());
    bpu::PredictionBundle b;
    bpu::Metadata m{};
    HistoryRegister gh(8);
    auto ctx = stageContext(2, &gh, 1);
    try {
        a.predict(ctx, b, m);
        FAIL() << "expected ContractViolation";
    } catch (const guard::ContractViolation& e) {
        EXPECT_EQ(e.component(), "LIAR");
        EXPECT_NE(std::string(e.what()).find("metaBits"),
                  std::string::npos);
    }
}

TEST(ContractAuditor, OutsideComposerChecksAreSkipped)
{
    // Component tests drive predict() directly with a default context
    // (stage 0); the auditor must not flag that.
    guard::ContractAuditor a(std::make_unique<BenignMock>(2));
    bpu::PredictionBundle b;
    bpu::Metadata m{};
    bpu::PredictContext ctx;
    EXPECT_NO_THROW(a.predict(ctx, b, m));
}

TEST(ContractAuditor, MetaMutationBetweenFireAndUpdateCaught)
{
    bpu::Topology topo;
    auto* mock = topo.make<MetaLeakMock>();
    topo.setRoot(topo.leaf(mock));
    topo.wrapEach([](std::unique_ptr<bpu::PredictorComponent> c)
                      -> std::unique_ptr<bpu::PredictorComponent> {
        return std::make_unique<guard::ContractAuditor>(std::move(c));
    });

    bpu::BpuConfig bc;
    bpu::BranchPredictorUnit unit(std::move(topo), bc);

    bpu::QueryState q;
    unit.beginQuery(q, 0x1000, 4);
    unit.stage(q, 1);
    const bpu::PredictionBundle bundle = unit.stage(q, 2);

    bpu::FinalizeArgs fa;
    fa.finalPred = &bundle;
    fa.brMask[0] = true;
    fa.fetchedSlots = 4;
    fa.firstSeq = 1;
    const bpu::FtqPos pos = unit.finalize(q, fa);

    // The component held onto the writable fire-time pointer and now
    // corrupts the history file's metadata copy.
    ASSERT_NE(mock->saved, nullptr);
    (*mock->saved)[0] ^= 0x1;

    bpu::BranchResolution res;
    res.ftq = pos;
    res.slot = 0;
    res.type = bpu::CfiType::Br;
    res.taken = false;
    res.mispredicted = false;
    unit.resolve(res);
    unit.commitPacket(pos);

    try {
        for (int i = 0; i < 10; ++i)
            unit.tick();
        FAIL() << "expected ContractViolation at update delivery";
    } catch (const guard::ContractViolation& e) {
        EXPECT_EQ(e.component(), "MOCK");
        EXPECT_EQ(e.query(), pos);
        EXPECT_NE(std::string(e.what()).find("fire and update"),
                  std::string::npos);
    }
}

TEST(ContractAuditor, CleanRoundTripPasses)
{
    bpu::Topology topo;
    topo.setRoot(topo.leaf(topo.make<MetaLeakMock>()));
    topo.wrapEach([](std::unique_ptr<bpu::PredictorComponent> c)
                      -> std::unique_ptr<bpu::PredictorComponent> {
        return std::make_unique<guard::ContractAuditor>(std::move(c));
    });

    bpu::BpuConfig bc;
    bpu::BranchPredictorUnit unit(std::move(topo), bc);

    bpu::QueryState q;
    unit.beginQuery(q, 0x1000, 4);
    unit.stage(q, 1);
    const bpu::PredictionBundle bundle = unit.stage(q, 2);

    bpu::FinalizeArgs fa;
    fa.finalPred = &bundle;
    fa.brMask[0] = true;
    fa.fetchedSlots = 4;
    const bpu::FtqPos pos = unit.finalize(q, fa);

    bpu::BranchResolution res;
    res.ftq = pos;
    res.slot = 0;
    res.type = bpu::CfiType::Br;
    res.taken = false;
    unit.resolve(res);
    unit.commitPacket(pos);
    EXPECT_NO_THROW({
        for (int i = 0; i < 10; ++i)
            unit.tick();
    });
}

// ---- Watchdog -----------------------------------------------------------

sim::SimConfig
stallingConfig()
{
    sim::SimConfig cfg = sim::makeConfig(sim::Design::B2);
    // No memory issue-queue entries: the first load can never
    // dispatch, so commit progress stops — a genuine deadlock.
    cfg.backend.memIqEntries = 0;
    cfg.deadlockCycles = 1'000;
    cfg.warmupInsts = 1'000;
    cfg.maxInsts = 2'000;
    return cfg;
}

TEST(Watchdog, DeadlockProducesPostMortem)
{
    const auto prof = prog::WorkloadLibrary::profile("coremark");
    const prog::Program p = prog::buildWorkload(prof);
    sim::Simulator s(p, sim::buildTopology(sim::Design::B2),
                     stallingConfig());
    const sim::SimResult r = s.run();
    EXPECT_TRUE(r.deadlocked);
    ASSERT_FALSE(r.diagnostics.empty());
    EXPECT_NE(r.diagnostics.find("post-mortem"), std::string::npos);
    EXPECT_NE(r.diagnostics.find("ROB"), std::string::npos);
    EXPECT_NE(r.diagnostics.find("frontend"), std::string::npos);
    EXPECT_NE(r.diagnostics.find("history file"), std::string::npos);
    // The blocked load never dispatches, so the ROB drains empty and
    // instructions pile up in the fetch buffer — exactly the signature
    // the report should show for a dispatch-blocked pipeline.
    EXPECT_EQ(r.postMortem.robEntries, 0u);
    EXPECT_FALSE(r.postMortem.robHeadValid);
    EXPECT_GT(r.postMortem.fetchBufferInsts, 0u);
    EXPECT_EQ(r.postMortem.deadlockThreshold, 1'000u);
    EXPECT_GT(r.postMortem.noProgressCycles, 1'000u);
}

TEST(Watchdog, RunCheckedThrowsDeadlockError)
{
    const auto prof = prog::WorkloadLibrary::profile("coremark");
    const prog::Program p = prog::buildWorkload(prof);
    sim::Simulator s(p, sim::buildTopology(sim::Design::B2),
                     stallingConfig());
    try {
        s.runChecked();
        FAIL() << "expected DeadlockError";
    } catch (const guard::DeadlockError& e) {
        EXPECT_NE(std::string(e.what()).find("deadlock"),
                  std::string::npos);
        EXPECT_NE(e.postMortem().find("ROB"), std::string::npos);
    }
}

TEST(Watchdog, HealthyRunDoesNotTrip)
{
    const auto prof = prog::WorkloadLibrary::profile("coremark");
    const prog::Program p = prog::buildWorkload(prof);
    sim::SimConfig cfg = sim::makeConfig(sim::Design::B2);
    cfg.warmupInsts = 2'000;
    cfg.maxInsts = 5'000;
    cfg.deadlockCycles = 1'000;
    sim::Simulator s(p, sim::buildTopology(sim::Design::B2), cfg);
    const sim::SimResult r = s.run();
    EXPECT_FALSE(r.deadlocked);
    EXPECT_TRUE(r.diagnostics.empty());
}

TEST(Watchdog, PostMortemFormatNamesEverySection)
{
    guard::PostMortem pm;
    pm.cycle = 1234;
    pm.robEntries = 3;
    pm.robHeadValid = true;
    pm.robHeadPc = 0x4000;
    pm.robHeadState = "waiting";
    pm.fetchPc = 0x4400;
    pm.recentRedirects.push_back({0x4800, 1200});
    const std::string s = pm.format();
    EXPECT_NE(s.find("post-mortem"), std::string::npos);
    EXPECT_NE(s.find("ROB"), std::string::npos);
    EXPECT_NE(s.find("0x4000"), std::string::npos);
    EXPECT_NE(s.find("redirects"), std::string::npos);
    EXPECT_NE(s.find("0x4800"), std::string::npos);
}

// ---- Fault injection ----------------------------------------------------

TEST(FaultInjection, DeterministicAndGraceful)
{
    const auto prof = prog::WorkloadLibrary::profile("leela");
    const prog::Program p = prog::buildWorkload(prof);

    sim::SimConfig cfg = sim::makeConfig(sim::Design::TageL);
    cfg.warmupInsts = 5'000;
    cfg.maxInsts = 20'000;
    cfg.faultRate = 1e-3;
    cfg.faultSeed = 7;
    // Audit simultaneously: injected faults must corrupt state, not
    // the event protocol.
    cfg.audit = true;

    sim::Simulator a(p, sim::buildTopology(sim::Design::TageL), cfg);
    sim::Simulator b(p, sim::buildTopology(sim::Design::TageL), cfg);
    const sim::SimResult ra = a.run();
    const sim::SimResult rb = b.run();

    EXPECT_FALSE(ra.deadlocked);
    EXPECT_GT(ra.faultsInjected, 0u);
    EXPECT_GT(ra.auditChecks, 0u);
    // The composed predictor degrades, it does not collapse.
    EXPECT_GT(ra.accuracy(), 0.5);

    EXPECT_EQ(ra.cycles, rb.cycles);
    EXPECT_EQ(ra.condMispredicts, rb.condMispredicts);
    EXPECT_EQ(ra.faultsInjected, rb.faultsInjected);
    EXPECT_EQ(ra.updatesDropped, rb.updatesDropped);
}

TEST(FaultInjection, AuditedRunMatchesUnaudited)
{
    const auto prof = prog::WorkloadLibrary::profile("leela");
    const prog::Program p = prog::buildWorkload(prof);

    sim::SimConfig plain = sim::makeConfig(sim::Design::TageL);
    plain.warmupInsts = 5'000;
    plain.maxInsts = 20'000;
    sim::SimConfig audited = plain;
    audited.audit = true;

    sim::Simulator a(p, sim::buildTopology(sim::Design::TageL), plain);
    sim::Simulator b(p, sim::buildTopology(sim::Design::TageL), audited);
    const sim::SimResult ra = a.run();
    const sim::SimResult rb = b.run();

    // The auditor is a pure observer: bit-identical metrics.
    EXPECT_EQ(ra.cycles, rb.cycles);
    EXPECT_EQ(ra.condMispredicts, rb.condMispredicts);
    EXPECT_EQ(ra.jalrMispredicts, rb.jalrMispredicts);
    EXPECT_EQ(rb.auditChecks > 0, true);
    EXPECT_EQ(ra.auditChecks, 0u);
}

TEST(FaultInjection, ZeroRateInjectsNothing)
{
    guard::FaultEngine eng(0.0, 7);
    EXPECT_FALSE(eng.enabled());
    for (int i = 0; i < 1000; ++i)
        EXPECT_FALSE(eng.roll());
    EXPECT_EQ(eng.faultsInjected(), 0u);
}

} // namespace
} // namespace cobra
