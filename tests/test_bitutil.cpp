#include <gtest/gtest.h>

#include "common/bitutil.hpp"

namespace cobra {
namespace {

TEST(BitUtil, MaskBits)
{
    EXPECT_EQ(maskBits(0), 0u);
    EXPECT_EQ(maskBits(1), 1u);
    EXPECT_EQ(maskBits(8), 0xffu);
    EXPECT_EQ(maskBits(63), 0x7fffffffffffffffull);
    EXPECT_EQ(maskBits(64), ~std::uint64_t{0});
    EXPECT_EQ(maskBits(99), ~std::uint64_t{0});
}

TEST(BitUtil, Bits)
{
    EXPECT_EQ(bits(0xdeadbeef, 0, 8), 0xefu);
    EXPECT_EQ(bits(0xdeadbeef, 8, 8), 0xbeu);
    EXPECT_EQ(bits(0xdeadbeef, 16, 16), 0xdeadu);
    EXPECT_EQ(bits(0xff, 4, 0), 0u);
}

TEST(BitUtil, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_FALSE(isPow2(3));
    EXPECT_TRUE(isPow2(1ull << 40));
    EXPECT_FALSE(isPow2((1ull << 40) + 1));
}

TEST(BitUtil, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(4), 2u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(BitUtil, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(floorLog2(2047), 10u);
}

TEST(BitUtil, FoldXorWidth)
{
    // Folded results must fit in the requested width.
    for (unsigned w = 1; w <= 16; ++w) {
        const std::uint64_t f = foldXor(0xfedcba9876543210ull, w);
        EXPECT_LE(f, maskBits(w)) << "width " << w;
    }
}

TEST(BitUtil, FoldXorIdentityForWideOutputs)
{
    EXPECT_EQ(foldXor(0x1234, 64), 0x1234u);
    EXPECT_EQ(foldXor(0x1234, 0), 0u);
}

TEST(BitUtil, FoldXorMixesAllInputBits)
{
    // Flipping any input bit must flip the folded output.
    const std::uint64_t base = 0xa5a5a5a5a5a5a5a5ull;
    const std::uint64_t f0 = foldXor(base, 10);
    for (unsigned b = 0; b < 64; ++b)
        EXPECT_NE(foldXor(base ^ (1ull << b), 10), f0) << "bit " << b;
}

TEST(BitUtil, Mix64Deterministic)
{
    EXPECT_EQ(mix64(42), mix64(42));
    EXPECT_NE(mix64(42), mix64(43));
}

TEST(BitUtil, Mix64AvalanchesLowBits)
{
    // Nearby inputs should flip roughly half the output bits.
    int totalFlips = 0;
    for (std::uint64_t x = 0; x < 64; ++x) {
        totalFlips +=
            __builtin_popcountll(mix64(x) ^ mix64(x + 1));
    }
    const double avg = totalFlips / 64.0;
    EXPECT_GT(avg, 24.0);
    EXPECT_LT(avg, 40.0);
}

TEST(BitUtil, HashCombineOrderSensitive)
{
    EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1));
}

} // namespace
} // namespace cobra
