/**
 * @file
 * DesignSpec tests: lossless JSON round-trips, bit-identity between
 * spec-built and preset-built designs across the paper tuples and
 * their SFB/ghist/specialize variants, and the malformed-spec
 * rejection table (every bad document is a structured ConfigError
 * naming the offending field, never a mis-built topology).
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "guard/errors.hpp"
#include "program/workload.hpp"
#include "serve/json.hpp"
#include "sim/design_spec.hpp"
#include "sim/presets.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"

using namespace cobra;
using guard::ConfigError;

namespace {

prog::WorkloadCache&
cache()
{
    static prog::WorkloadCache c;
    return c;
}

const std::vector<sim::Design>&
allDesigns()
{
    static const std::vector<sim::Design> d = {
        sim::Design::Tourney, sim::Design::B2, sim::Design::TageL,
        sim::Design::RefBig};
    return d;
}

/** Run one point and return (result, stats doc) for exact compares. */
std::pair<sim::SimResult, std::string>
runPoint(bpu::Topology topo, sim::SimConfig cfg, const std::string& wl)
{
    sim::Simulator s(cache().get(wl), std::move(topo), cfg);
    const sim::SimResult r = s.run();
    return {r, sim::renderPointStats("p", s, r)};
}

} // namespace

// ---------------------------------------------------------------------
// JSON round-trips
// ---------------------------------------------------------------------

TEST(DesignSpec, RoundTripsThroughJsonExactly)
{
    for (sim::Design d : allDesigns()) {
        const sim::DesignSpec spec = sim::presetSpec(d);
        const std::string text = spec.toJson();
        const sim::DesignSpec back = sim::DesignSpec::fromJson(text);
        EXPECT_EQ(spec, back) << sim::designName(d);
        // Serialization is canonical: a second trip is byte-stable.
        EXPECT_EQ(text, back.toJson()) << sim::designName(d);
    }
}

TEST(DesignSpec, ParsedJsonValueOverloadMatchesTextOverload)
{
    for (sim::Design d : allDesigns()) {
        const std::string text = sim::presetSpec(d).toJson();
        const serve::Json doc = serve::Json::parse(text);
        EXPECT_EQ(sim::DesignSpec::fromJson(doc),
                  sim::DesignSpec::fromJson(text))
            << sim::designName(d);
    }
}

TEST(DesignSpec, PresetNamesResolveWithAliases)
{
    EXPECT_EQ(sim::presetSpec("tagel").name, "TAGE-L");
    EXPECT_EQ(sim::presetSpec("tage-l"), sim::presetSpec("tagel"));
    EXPECT_EQ(sim::presetSpec("ref-big"), sim::presetSpec("refbig"));
    EXPECT_TRUE(sim::isPresetName("tourney"));
    EXPECT_TRUE(sim::isPresetName("b2"));
    EXPECT_FALSE(sim::isPresetName("bogus"));
    EXPECT_THROW(sim::presetSpec("bogus"), ConfigError);
}

// ---------------------------------------------------------------------
// Spec-built == preset-built, across run-option variants
// ---------------------------------------------------------------------

TEST(DesignSpec, SpecBuiltMatchesPresetBuiltAcrossVariants)
{
    struct Variant
    {
        const char* name;
        bool sfb;
        bpu::GhistRepairMode ghist;
    };
    const Variant variants[] = {
        {"default", false, bpu::GhistRepairMode::RepairAndReplay},
        {"sfb", true, bpu::GhistRepairMode::RepairAndReplay},
        {"ghist-repair", false, bpu::GhistRepairMode::RepairOnly},
        {"ghist-none", false, bpu::GhistRepairMode::None},
    };
    for (sim::Design d : allDesigns()) {
        const sim::DesignSpec spec = sim::presetSpec(d);
        for (const Variant& v : variants) {
            sim::SimConfig pcfg = sim::makeConfig(d);
            sim::SimConfig scfg = sim::makeConfig(spec);
            for (sim::SimConfig* cfg : {&pcfg, &scfg}) {
                cfg->warmupInsts = 2000;
                cfg->maxInsts = 30'000;
                cfg->backend.sfbEnabled = v.sfb;
                cfg->frontend.ghistMode = v.ghist;
                cfg->backend.ghistMode = v.ghist;
            }
            const auto [rp, sp] =
                runPoint(sim::buildTopology(d), pcfg, "leela");
            const auto [rs, ss] =
                runPoint(sim::buildTopology(spec), scfg, "leela");
            EXPECT_EQ(rp, rs)
                << sim::designName(d) << " variant " << v.name;
            EXPECT_EQ(sp, ss)
                << sim::designName(d) << " variant " << v.name;
        }
    }
}

TEST(DesignSpec, SpecBuiltDesignsStaySpecializable)
{
    // The fused-loop registry keys on the component tuple, so a
    // spec-built paper design must bind the same specialized loop as
    // the preset-built one — and produce identical results under it.
    for (sim::Design d : sim::paperDesigns()) {
        const sim::DesignSpec spec = sim::presetSpec(d);
        sim::SimConfig cfg = sim::makeConfig(spec);
        cfg.warmupInsts = 2000;
        cfg.maxInsts = 30'000;
        cfg.specialize = sim::SpecializeMode::Require;
        ASSERT_TRUE(
            sim::specializeAvailable(sim::buildTopology(spec), cfg))
            << sim::designName(d);

        sim::SimConfig off = cfg;
        off.specialize = sim::SpecializeMode::Off;
        const auto [rr, sr] =
            runPoint(sim::buildTopology(spec), cfg, "mcf");
        const auto [ro, so] =
            runPoint(sim::buildTopology(spec), off, "mcf");
        EXPECT_EQ(rr, ro) << sim::designName(d);
        EXPECT_EQ(sr, so) << sim::designName(d);
    }
}

TEST(DesignSpec, StorageAndAreaMatchTheBuiltTopology)
{
    const phys::AreaModel model;
    for (sim::Design d : allDesigns()) {
        const sim::DesignSpec spec = sim::presetSpec(d);
        bpu::Topology topo = sim::buildTopology(spec);
        std::uint64_t bits = 0;
        double um2 = 0.0;
        for (const auto* c : topo.componentList()) {
            bits += c->storageBits();
            um2 += model.area(c->physicalCost());
        }
        EXPECT_EQ(sim::specStorageBits(spec), bits)
            << sim::designName(d);
        EXPECT_DOUBLE_EQ(sim::specAreaUm2(spec, model), um2)
            << sim::designName(d);
        EXPECT_EQ(sim::specMaxLatency(spec), topo.maxLatency())
            << sim::designName(d);
    }
}

// ---------------------------------------------------------------------
// Malformed-spec rejection table
// ---------------------------------------------------------------------

TEST(DesignSpec, MalformedDocumentsAreRejectedWithConfigErrors)
{
    const char* bad[] = {
        "not json at all",
        "[1, 2]", // not an object
        // Unknown top-level field.
        "{\"name\": \"x\", \"zzz\": 1, \"components\": "
        "[{\"id\": \"A\", \"kind\": \"bim\"}], \"tree\": \"A\"}",
        // Missing / malformed components.
        "{\"name\": \"x\", \"tree\": \"A\"}",
        "{\"name\": \"x\", \"components\": {}, \"tree\": \"A\"}",
        "{\"name\": \"x\", \"components\": [], \"tree\": \"A\"}",
        // Component without id / kind.
        "{\"name\": \"x\", \"components\": [{\"kind\": \"bim\"}], "
        "\"tree\": \"A\"}",
        "{\"name\": \"x\", \"components\": [{\"id\": \"A\"}], "
        "\"tree\": \"A\"}",
        // Unknown kind, unknown knob, bad sizing, bad mode.
        "{\"name\": \"x\", \"components\": "
        "[{\"id\": \"A\", \"kind\": \"nope\"}], \"tree\": \"A\"}",
        "{\"name\": \"x\", \"components\": [{\"id\": \"A\", \"kind\": "
        "\"bim\", \"knobs\": {\"bogus\": 1}}], \"tree\": \"A\"}",
        "{\"name\": \"x\", \"components\": [{\"id\": \"A\", \"kind\": "
        "\"bim\", \"knobs\": {\"sets\": 3000}}], \"tree\": \"A\"}",
        "{\"name\": \"x\", \"components\": [{\"id\": \"A\", \"kind\": "
        "\"bim\", \"mode\": \"warp\"}], \"tree\": \"A\"}",
        // Duplicate component id.
        "{\"name\": \"x\", \"components\": "
        "[{\"id\": \"A\", \"kind\": \"bim\"}, "
        "{\"id\": \"A\", \"kind\": \"bim\"}], \"tree\": \"A\"}",
        // Missing name (validate requires it).
        "{\"components\": [{\"id\": \"A\", \"kind\": \"bim\"}], "
        "\"tree\": \"A\"}",
        // Tree violations: missing, dangling ref, unused component,
        // arb whose arbiter is not an arbiter kind.
        "{\"name\": \"x\", \"components\": "
        "[{\"id\": \"A\", \"kind\": \"bim\"}]}",
        "{\"name\": \"x\", \"components\": "
        "[{\"id\": \"A\", \"kind\": \"bim\"}], \"tree\": \"B\"}",
        "{\"name\": \"x\", \"components\": "
        "[{\"id\": \"A\", \"kind\": \"bim\"}, "
        "{\"id\": \"B\", \"kind\": \"bim\"}], \"tree\": \"A\"}",
        "{\"name\": \"x\", \"components\": "
        "[{\"id\": \"A\", \"kind\": \"bim\"}, "
        "{\"id\": \"B\", \"kind\": \"bim\"}], "
        "\"tree\": {\"arb\": \"A\", \"children\": [\"B\"]}}",
        // tage needs tables.
        "{\"name\": \"x\", \"components\": "
        "[{\"id\": \"A\", \"kind\": \"tage\"}], \"tree\": \"A\"}",
        // Tree node that is neither string, chain, nor arb.
        "{\"name\": \"x\", \"components\": "
        "[{\"id\": \"A\", \"kind\": \"bim\"}], \"tree\": 7}",
        // Unknown field inside a known block.
        "{\"name\": \"x\", \"components\": "
        "[{\"id\": \"A\", \"kind\": \"bim\"}], \"tree\": \"A\", "
        "\"bpu\": {\"zzz\": 1}}",
    };
    for (const char* text : bad) {
        EXPECT_THROW(sim::DesignSpec::fromJson(std::string(text)),
                     ConfigError)
            << "accepted: " << text;
    }
}

TEST(DesignSpec, MinimalSingleComponentSpecIsValid)
{
    const sim::DesignSpec spec = sim::DesignSpec::fromJson(
        std::string("{\"name\": \"mini\", \"components\": "
                    "[{\"id\": \"A\", \"kind\": \"bim\"}], "
                    "\"tree\": \"A\"}"));
    EXPECT_EQ(spec.name, "mini");
    bpu::Topology topo = sim::buildTopology(spec);
    EXPECT_GT(sim::specStorageBits(spec), 0u);
    // And it simulates end to end.
    sim::SimConfig cfg = sim::makeConfig(spec);
    cfg.warmupInsts = 500;
    cfg.maxInsts = 5000;
    const auto [r, s] = runPoint(std::move(topo), cfg, "leela");
    EXPECT_GT(r.insts, 0u);
    EXPECT_FALSE(s.empty());
}
