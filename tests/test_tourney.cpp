#include <gtest/gtest.h>

#include "components/tourney.hpp"

namespace cobra::comps {
namespace {

TourneyParams
smallTourney()
{
    TourneyParams p;
    p.sets = 64;
    p.histBits = 6;
    p.latency = 3;
    p.fetchWidth = 4;
    return p;
}

struct ArbFixture
{
    Tourney t{"TOURNEY", smallTourney()};
    HistoryRegister gh{64};

    /** One arbitrate+update round; returns the selected direction. */
    bool
    round(bool aTaken, bool bTaken, bool actual)
    {
        bpu::PredictContext ctx;
        ctx.pc = 0x2000;
        ctx.validSlots = 4;
        ctx.ghist = &gh;
        std::vector<bpu::PredictionBundle> ins(2);
        for (auto& in : ins)
            in.width = 4;
        ins[0].slots[0].valid = true;
        ins[0].slots[0].taken = aTaken;
        ins[1].slots[0].valid = true;
        ins[1].slots[0].taken = bTaken;
        bpu::PredictionBundle out;
        out.width = 4;
        bpu::Metadata meta{};
        t.arbitrate(ctx, ins, out, meta);
        const bool pred = out.slots[0].taken;

        bpu::ResolveEvent ev;
        ev.pc = 0x2000;
        ev.ghist = &gh;
        ev.meta = &meta;
        ev.brMask[0] = true;
        ev.takenMask[0] = actual;
        ev.predicted = &out;
        t.update(ev);
        return pred;
    }
};

TEST(Tourney, IsArbiter)
{
    Tourney t("TOURNEY", smallTourney());
    EXPECT_TRUE(t.isArbiter());
}

TEST(Tourney, LearnsToTrustCorrectInput)
{
    // Input 0 is always right, input 1 always wrong.
    ArbFixture f;
    for (int i = 0; i < 100; ++i)
        f.round(true, false, true);
    EXPECT_TRUE(f.round(true, false, true));
    // Swap: input 1 becomes the reliable one; the counter re-trains.
    for (int i = 0; i < 100; ++i)
        f.round(true, false, false);
    EXPECT_FALSE(f.round(true, false, false));
}

TEST(Tourney, AgreementDoesNotTrain)
{
    ArbFixture f;
    // Train toward input 1.
    for (int i = 0; i < 50; ++i)
        f.round(true, false, false);
    EXPECT_FALSE(f.round(true, false, false));
    // Long agreement phase must not move the choice counter.
    for (int i = 0; i < 200; ++i)
        f.round(true, true, true);
    EXPECT_FALSE(f.round(true, false, false))
        << "agreement rounds must not retrain the selector";
}

TEST(Tourney, SingleValidInputWins)
{
    Tourney t("TOURNEY", smallTourney());
    HistoryRegister gh(64);
    bpu::PredictContext ctx;
    ctx.pc = 0x2000;
    ctx.validSlots = 4;
    ctx.ghist = &gh;
    std::vector<bpu::PredictionBundle> ins(2);
    for (auto& in : ins)
        in.width = 4;
    ins[1].slots[2].valid = true;
    ins[1].slots[2].taken = true;
    bpu::PredictionBundle out;
    out.width = 4;
    bpu::Metadata meta{};
    t.arbitrate(ctx, ins, out, meta);
    EXPECT_TRUE(out.slots[2].valid);
    EXPECT_TRUE(out.slots[2].taken);
}

TEST(Tourney, NeitherInputPassesThrough)
{
    Tourney t("TOURNEY", smallTourney());
    HistoryRegister gh(64);
    bpu::PredictContext ctx;
    ctx.pc = 0x2000;
    ctx.validSlots = 4;
    ctx.ghist = &gh;
    std::vector<bpu::PredictionBundle> ins(2);
    for (auto& in : ins)
        in.width = 4;
    bpu::PredictionBundle out;
    out.width = 4;
    out.slots[1].valid = true;
    out.slots[1].taken = true; // incoming predict_in
    bpu::Metadata meta{};
    t.arbitrate(ctx, ins, out, meta);
    EXPECT_TRUE(out.slots[1].taken) << "pass-through on no input";
}

TEST(Tourney, CopiesTargetFromChosenInput)
{
    Tourney t("TOURNEY", smallTourney());
    HistoryRegister gh(64);
    bpu::PredictContext ctx;
    ctx.pc = 0x2000;
    ctx.validSlots = 4;
    ctx.ghist = &gh;
    std::vector<bpu::PredictionBundle> ins(2);
    for (auto& in : ins)
        in.width = 4;
    ins[0].slots[0].valid = true;
    ins[0].slots[0].taken = true;
    ins[0].slots[0].targetValid = true;
    ins[0].slots[0].target = 0xbeef0;
    ins[0].slots[0].type = bpu::CfiType::Br;
    bpu::PredictionBundle out;
    out.width = 4;
    bpu::Metadata meta{};
    t.arbitrate(ctx, ins, out, meta);
    EXPECT_TRUE(out.slots[0].targetValid);
    EXPECT_EQ(out.slots[0].target, 0xbeef0u);
}

TEST(Tourney, StorageAccounting)
{
    Tourney t("TOURNEY", smallTourney());
    EXPECT_EQ(t.storageBits(), 64u * 2);
}

} // namespace
} // namespace cobra::comps
