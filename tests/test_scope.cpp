/**
 * @file
 * CobraScope tests: the stat registry (hierarchy, JSON rendering,
 * duplicate rejection), the pipeline event tracer (sampling window,
 * per-kind counts, Chrome trace rendering), the SimResult field
 * enumeration, and the end-to-end properties the observability layer
 * promises — stats/trace output is byte-identical across --jobs,
 * tracing never perturbs simulation results, and trace record counts
 * reconcile exactly with the aggregate counters.
 */

#include <fstream>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include <gtest/gtest.h>

#include "guard/errors.hpp"
#include "program/workload.hpp"
#include "scope/stat_registry.hpp"
#include "scope/tracer.hpp"
#include "sim/presets.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"

using namespace cobra;

namespace {

prog::WorkloadCache&
cache()
{
    static prog::WorkloadCache c;
    return c;
}

sim::SimConfig
smallConfig(sim::Design d)
{
    sim::SimConfig cfg = sim::makeConfig(d);
    cfg.warmupInsts = 500;
    cfg.maxInsts = 3000;
    return cfg;
}

/**
 * String- and escape-aware structural check: every JSON document we
 * emit must balance its braces/brackets outside string literals and
 * close every string. (CI additionally validates against the schema
 * with a real parser; this keeps the invariant in the unit suite.)
 */
bool
jsonBalanced(const std::string& doc)
{
    std::vector<char> stack;
    bool inString = false;
    for (std::size_t i = 0; i < doc.size(); ++i) {
        const char c = doc[i];
        if (inString) {
            if (c == '\\')
                ++i; // skip the escaped character
            else if (c == '"')
                inString = false;
            continue;
        }
        switch (c) {
          case '"': inString = true; break;
          case '{': stack.push_back('}'); break;
          case '[': stack.push_back(']'); break;
          case '}':
          case ']':
            if (stack.empty() || stack.back() != c)
                return false;
            stack.pop_back();
            break;
          default: break;
        }
    }
    return !inString && stack.empty();
}

} // namespace

// ---- StatRegistry --------------------------------------------------------

TEST(StatRegistry, RegistersAndReadsGroups)
{
    StatGroup g("frontend");
    Stat<Counter> c{g, "fetches", "packets fetched"};
    c += 7;

    scope::StatRegistry reg;
    reg.add(g);
    reg.add("caches.l1i", g); // same group, second path is fine
    ASSERT_EQ(reg.nodes().size(), 2u);
    EXPECT_EQ(reg.find("frontend"), &g);
    EXPECT_EQ(reg.find("caches.l1i"), &g);
    EXPECT_EQ(reg.find("nope"), nullptr);
    EXPECT_EQ(reg.get("frontend", "fetches"), 7u);
    EXPECT_EQ(reg.get("frontend", "missing"), 0u);
    EXPECT_EQ(reg.get("missing", "fetches"), 0u);

    std::ostringstream oss;
    reg.dump(oss);
    EXPECT_NE(oss.str().find("caches.l1i.fetches = 7"),
              std::string::npos);
}

TEST(StatRegistry, RejectsDuplicateAndEmptyPaths)
{
    StatGroup g("grp");
    scope::StatRegistry reg;
    reg.add(g);
    EXPECT_THROW(reg.add(g), std::invalid_argument);
    EXPECT_THROW(reg.add("", g), std::invalid_argument);
}

TEST(StatRegistry, RendersNestedJson)
{
    StatGroup top("top");
    Stat<Counter> a{top, "a", "a counter"};
    ++a;
    StatGroup leaf("leaf");
    Stat<Counter> b{leaf, "b", "another counter"};
    Stat<Histogram> h{leaf, "h", "a histogram", 4};
    h.sample(1);
    h.sample(3);

    scope::StatRegistry reg;
    reg.add(top);
    reg.add("nest.leaf", leaf);

    std::ostringstream oss;
    reg.writeJson(oss);
    const std::string doc = oss.str();
    EXPECT_TRUE(jsonBalanced(doc)) << doc;
    EXPECT_NE(doc.find("\"top\": {"), std::string::npos);
    EXPECT_NE(doc.find("\"a\": 1"), std::string::npos);
    EXPECT_NE(doc.find("\"nest\": {"), std::string::npos);
    EXPECT_NE(doc.find("\"leaf\": {"), std::string::npos);
    EXPECT_NE(doc.find("\"histograms\": {"), std::string::npos);
    EXPECT_NE(doc.find("\"samples\": 2"), std::string::npos);
    EXPECT_NE(doc.find("\"buckets\": [0, 1, 0, 1]"),
              std::string::npos);
}

// ---- Tracer --------------------------------------------------------------

TEST(Tracer, SamplingWindowGatesRecords)
{
    scope::Tracer t(scope::TraceWindow{10, 5});
    EXPECT_FALSE(t.active());
    t.record(scope::TraceKind::Predict, 0x100, 0); // before setCycle
    t.setCycle(9);
    t.record(scope::TraceKind::Predict, 0x100, 0);
    EXPECT_EQ(t.totalRecords(), 0u);
    t.setCycle(10);
    EXPECT_TRUE(t.active());
    t.record(scope::TraceKind::Predict, 0x100, 1);
    t.setCycle(14);
    t.record(scope::TraceKind::Commit, 0x104, 1);
    t.setCycle(15);
    EXPECT_FALSE(t.active());
    t.record(scope::TraceKind::Commit, 0x108, 2);
    EXPECT_EQ(t.totalRecords(), 2u);
    EXPECT_EQ(t.count(scope::TraceKind::Predict), 1u);
    EXPECT_EQ(t.count(scope::TraceKind::Commit), 1u);
    EXPECT_EQ(t.count(scope::TraceKind::Mispredict), 0u);
}

TEST(Tracer, ComponentNamesWithFallback)
{
    scope::Tracer t;
    EXPECT_EQ(t.componentName(scope::kNoComponent), "-");
    EXPECT_EQ(t.componentName(0), "-");
    t.setComponentNames({"TAGE", "BIM"});
    EXPECT_EQ(t.componentName(0), "TAGE");
    EXPECT_EQ(t.componentName(1), "BIM");
    EXPECT_EQ(t.componentName(2), "-");
}

TEST(Tracer, WritesChromeTraceFragments)
{
    scope::Tracer t;
    t.setComponentNames({"TAGE"});
    t.setCycle(42);
    t.record(scope::TraceKind::Mispredict, 0x1a2b, 7, 0, 3, true);
    t.record(scope::TraceKind::Commit, 0x1a2c, 7);

    std::ostringstream oss;
    t.writeChromeTrace(oss, 3, "tagel/leela");
    const std::string frag = oss.str();
    // Fragment contract: every line ends ",\n" so the file writer can
    // concatenate fragments and close the array itself.
    EXPECT_EQ(frag.substr(frag.size() - 2), ",\n");
    EXPECT_NE(frag.find("\"process_name\""), std::string::npos);
    EXPECT_NE(frag.find("\"tagel/leela\""), std::string::npos);
    EXPECT_NE(frag.find("\"pid\": 3"), std::string::npos);
    EXPECT_NE(frag.find("\"ts\": 42"), std::string::npos);
    EXPECT_NE(frag.find("\"name\": \"mispredict\""),
              std::string::npos);
    EXPECT_NE(frag.find("\"pc\": \"0x1a2b\""), std::string::npos);
    EXPECT_NE(frag.find("\"comp\": \"TAGE\""), std::string::npos);
    // Commit carries no attribution, so no comp key on that line.
    EXPECT_TRUE(jsonBalanced("[" + frag + "{}]"));
}

// ---- SimResult field enumeration -----------------------------------------

TEST(SimResult, EveryEnumeratedFieldDrivesEquality)
{
    sim::SimResult base;
    std::size_t n = 0;
    base.forEachField([&](const char*, const auto&) { ++n; });
    EXPECT_GE(n, 14u);

    for (std::size_t target = 0; target < n; ++target) {
        sim::SimResult m = base;
        std::size_t i = 0;
        m.forEachField([&](const char*, auto& v) {
            if (i++ != target)
                return;
            using T = std::decay_t<decltype(v)>;
            if constexpr (std::is_same_v<T, bool>)
                v = !v;
            else if constexpr (std::is_same_v<T, std::string>)
                v += "x";
            else
                v += 1;
        });
        EXPECT_FALSE(m == base) << "field " << target
                                << " is not compared";
        const auto diff = sim::diffFields(m, base);
        ASSERT_EQ(diff.size(), 1u);
    }
    EXPECT_TRUE(sim::diffFields(base, base).empty());
}

// ---- OutputConfig validation ---------------------------------------------

TEST(OutputConfig, RejectsWindowWithoutTraceFile)
{
    sim::OutputConfig out;
    out.traceStartCycle = 100;
    EXPECT_THROW(out.validate(), guard::ConfigError);
    out.traceStartCycle = 0;
    out.traceCycles = 100;
    EXPECT_THROW(out.validate(), guard::ConfigError);
    out.traceEventsPath = "t.json";
    EXPECT_NO_THROW(out.validate());
}

TEST(OutputConfig, RejectsCollidingOutputPaths)
{
    sim::OutputConfig out;
    out.resultsJsonPath = "same.json";
    out.statsJsonPath = "same.json";
    EXPECT_THROW(out.validate(), guard::ConfigError);
    out.statsJsonPath = "other.json";
    EXPECT_NO_THROW(out.validate());
    out.traceEventsPath = "other.json";
    EXPECT_THROW(out.validate(), guard::ConfigError);
}

// ---- Simulator wiring ----------------------------------------------------

TEST(SimulatorScope, RegistryCoversTheWholeTree)
{
    const prog::Program& p = cache().get("dhrystone");
    sim::Simulator s(p, sim::buildTopology(sim::Design::TageL),
                     smallConfig(sim::Design::TageL));
    s.run();

    const scope::StatRegistry& reg = s.statRegistry();
    for (const char* path :
         {"frontend", "backend", "bpu", "caches.l1i", "caches.l1d",
          "caches.l2", "caches.l3", "guard"}) {
        EXPECT_NE(reg.find(path), nullptr) << path;
    }
    std::size_t compGroups = 0;
    std::uint64_t dirProvided = 0;
    for (const auto& n : reg.nodes()) {
        if (n.path.rfind("bpu.comp.", 0) == 0) {
            ++compGroups;
            dirProvided += reg.get(n.path, "dir_provided");
        }
    }
    EXPECT_GT(compGroups, 1u);
    EXPECT_GT(dirProvided, 0u)
        << "composer attribution never credited a provider";
    EXPECT_GT(reg.get("frontend", "packets_finalized"), 0u);
    EXPECT_GT(reg.get("backend", "committed"), 0u);
    EXPECT_GT(reg.get("caches.l1i", "accesses"), 0u);
}

TEST(SimulatorScope, ProviderCorrectnessIsCredited)
{
    const prog::Program& p = cache().get("leela");
    sim::Simulator s(p, sim::buildTopology(sim::Design::TageL),
                     smallConfig(sim::Design::TageL));
    s.run();

    std::uint64_t credited = 0;
    for (const auto& n : s.statRegistry().nodes()) {
        if (n.path.rfind("bpu.comp.", 0) == 0) {
            credited += s.statRegistry().get(n.path, "provider_correct");
            credited += s.statRegistry().get(n.path, "provider_wrong");
        }
    }
    EXPECT_GT(credited, 0u);
}

TEST(SimulatorScope, TracingDoesNotPerturbResults)
{
    const prog::Program& p = cache().get("dhrystone");
    const sim::SimConfig plain = smallConfig(sim::Design::B2);
    sim::SimConfig traced = plain;
    traced.output.traceEventsPath = "unused-path.json";

    sim::Simulator off(p, sim::buildTopology(sim::Design::B2), plain);
    sim::Simulator on(p, sim::buildTopology(sim::Design::B2), traced);
    const sim::SimResult a = off.run();
    const sim::SimResult b = on.run();
    EXPECT_EQ(off.tracer(), nullptr);
    ASSERT_NE(on.tracer(), nullptr);
    EXPECT_TRUE(a == b) << "tracing changed the simulation";
    EXPECT_GT(on.tracer()->totalRecords(), 0u);
}

TEST(SimulatorScope, TraceCountsReconcileWithAggregates)
{
    // warmup = 0 makes the measured-region deltas equal the full-run
    // counters the tracer sees, so the counts must match exactly.
    const prog::Program& p = cache().get("leela");
    sim::SimConfig cfg = smallConfig(sim::Design::TageL);
    cfg.warmupInsts = 0;
    cfg.output.traceEventsPath = "unused-path.json";

    sim::Simulator s(p, sim::buildTopology(sim::Design::TageL), cfg);
    const sim::SimResult r = s.run();
    ASSERT_NE(s.tracer(), nullptr);
    const scope::Tracer& t = *s.tracer();
    const scope::StatRegistry& reg = s.statRegistry();

    EXPECT_EQ(t.count(scope::TraceKind::Predict),
              reg.get("frontend", "packets_finalized"));
    EXPECT_EQ(t.count(scope::TraceKind::Fire),
              reg.get("bpu", "finalized"));
    EXPECT_EQ(t.count(scope::TraceKind::Mispredict),
              reg.get("bpu", "mispredicts"));
    EXPECT_EQ(t.count(scope::TraceKind::Repair),
              reg.get("bpu", "repair_events"));
    EXPECT_EQ(t.count(scope::TraceKind::Replay), r.ghistReplays);
    EXPECT_EQ(t.count(scope::TraceKind::Commit), r.cfis);
    EXPECT_GT(t.count(scope::TraceKind::Commit), 0u);
}

TEST(SimulatorScope, TraceWindowBoundsTheBuffer)
{
    const prog::Program& p = cache().get("dhrystone");
    sim::SimConfig cfg = smallConfig(sim::Design::B2);
    cfg.output.traceEventsPath = "unused-path.json";
    sim::Simulator whole(p, sim::buildTopology(sim::Design::B2), cfg);
    whole.run();

    cfg.output.traceStartCycle = 100;
    cfg.output.traceCycles = 200;
    sim::Simulator windowed(p, sim::buildTopology(sim::Design::B2),
                            cfg);
    windowed.run();

    ASSERT_NE(whole.tracer(), nullptr);
    ASSERT_NE(windowed.tracer(), nullptr);
    EXPECT_LT(windowed.tracer()->totalRecords(),
              whole.tracer()->totalRecords());
    for (const auto& rec : windowed.tracer()->records()) {
        EXPECT_GE(rec.cycle, 100u);
        EXPECT_LT(rec.cycle, 300u);
    }
}

// ---- Sweep integration ---------------------------------------------------

namespace {

std::vector<sim::SweepOutcome>
runScopedGrid(unsigned jobs)
{
    const sim::Design designs[] = {sim::Design::B2, sim::Design::TageL};
    const char* wls[] = {"dhrystone", "leela"};
    sim::SweepEngine engine(jobs);
    for (sim::Design d : designs) {
        for (const char* wl : wls) {
            sim::SweepPoint p =
                sim::SweepPoint::preset(d, cache().get(wl));
            p.cfg.warmupInsts = 500;
            p.cfg.maxInsts = 3000;
            // The paths only arm the renderers here; files are written
            // by the write* helpers, which these tests call directly.
            p.cfg.output.statsJsonPath = "stats.json";
            p.cfg.output.traceEventsPath = "trace.json";
            engine.add(std::move(p));
        }
    }
    return engine.run();
}

} // namespace

TEST(SweepScope, StatsAndTraceAreIdenticalAcrossJobs)
{
    const auto serial = runScopedGrid(1);
    const auto parallel = runScopedGrid(4);
    ASSERT_EQ(serial.size(), 4u);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        ASSERT_TRUE(serial[i].ok()) << serial[i].error;
        EXPECT_FALSE(serial[i].statsJson.empty());
        EXPECT_FALSE(serial[i].traceEvents.empty());
        EXPECT_EQ(serial[i].statsJson, parallel[i].statsJson)
            << "stats for " << serial[i].label
            << " diverged between --jobs 1 and --jobs 4";
        EXPECT_EQ(serial[i].traceEvents, parallel[i].traceEvents)
            << "trace for " << serial[i].label << " diverged";
    }
}

TEST(SweepScope, WritesWellFormedStatsDocument)
{
    const auto outs = runScopedGrid(2);
    const std::string path =
        ::testing::TempDir() + "/cobra_scope_stats.json";
    sim::writeStatsJson(path, "unit", outs, 2);

    std::ifstream f(path);
    ASSERT_TRUE(f.good());
    std::stringstream ss;
    ss << f.rdbuf();
    const std::string doc = ss.str();
    EXPECT_TRUE(jsonBalanced(doc));
    EXPECT_NE(doc.find("\"tool\": \"unit\""), std::string::npos);
    EXPECT_NE(doc.find("\"version\": 1"), std::string::npos);
    EXPECT_NE(doc.find("\"result\": {"), std::string::npos);
    EXPECT_NE(doc.find("\"cond_mispredicts\""), std::string::npos);
    EXPECT_NE(doc.find("\"groups\": {"), std::string::npos);
    EXPECT_NE(doc.find("\"counters\": {"), std::string::npos);
    EXPECT_NE(doc.find("\"bpu\": {"), std::string::npos);
    EXPECT_NE(doc.find("\"comp\": {"), std::string::npos);
}

TEST(SweepScope, WritesWellFormedTraceFile)
{
    const auto outs = runScopedGrid(2);
    const std::string path =
        ::testing::TempDir() + "/cobra_scope_trace.json";
    sim::writeTraceEvents(path, outs);

    std::ifstream f(path);
    ASSERT_TRUE(f.good());
    std::stringstream ss;
    ss << f.rdbuf();
    const std::string doc = ss.str();
    EXPECT_TRUE(jsonBalanced(doc));
    EXPECT_EQ(doc.front(), '[');
    EXPECT_NE(doc.find("\"ph\": \"M\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\": \"i\""), std::string::npos);
    // One process per sweep point: pids 0..3 all present.
    for (int pid = 0; pid < 4; ++pid) {
        EXPECT_NE(doc.find("\"pid\": " + std::to_string(pid)),
                  std::string::npos)
            << "missing process for point " << pid;
    }
}

TEST(SweepScope, ErrorPointsBecomeStubs)
{
    sim::SweepEngine engine(1);
    sim::SweepPoint bad =
        sim::SweepPoint::preset(sim::Design::B2, cache().get("leela"));
    bad.label = "boom";
    bad.cfg.output.statsJsonPath = "stats.json";
    bad.topology = []() -> bpu::Topology {
        throw std::runtime_error("synthetic failure");
    };
    engine.add(std::move(bad));
    const auto outs = engine.run();

    const std::string path =
        ::testing::TempDir() + "/cobra_scope_err.json";
    sim::writeStatsJson(path, "unit", outs, 1);
    std::ifstream f(path);
    std::stringstream ss;
    ss << f.rdbuf();
    EXPECT_TRUE(jsonBalanced(ss.str()));
    EXPECT_NE(ss.str().find("\"error\": \"synthetic failure\""),
              std::string::npos);
}
