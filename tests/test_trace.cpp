#include <gtest/gtest.h>

#include "program/workload.hpp"
#include "sim/presets.hpp"
#include "test_util.hpp"
#include "trace/trace.hpp"

namespace cobra::trace {
namespace {

TEST(Trace, RecordsArchitecturalBranchStream)
{
    const prog::Program p = prog::buildWorkload(
        prog::WorkloadLibrary::profile("x264"));
    const BranchTrace tr = recordTrace(p, 5000);
    ASSERT_EQ(tr.size(), 5000u);
    for (const auto& r : tr.records) {
        EXPECT_TRUE(p.contains(r.pc));
        EXPECT_LT(r.slot, 4u);
        if (r.taken)
            EXPECT_TRUE(p.contains(r.target));
    }
}

TEST(Trace, RecordingIsDeterministic)
{
    const prog::Program p = prog::buildWorkload(
        prog::WorkloadLibrary::profile("leela"));
    const BranchTrace a = recordTrace(p, 2000);
    const BranchTrace b = recordTrace(p, 2000);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.records[i].pc, b.records[i].pc);
        EXPECT_EQ(a.records[i].taken, b.records[i].taken);
    }
}

TEST(Trace, EvaluatorLearnsEasyTrace)
{
    // A loop-dominated workload evaluated trace-style with TAGE-L
    // should reach high accuracy.
    const prog::Program p = prog::buildWorkload(
        prog::WorkloadLibrary::profile("x264"));
    const BranchTrace tr = recordTrace(p, 40'000);
    TraceDrivenEvaluator ev(
        bpu::ComposedPredictor(sim::buildTopology(sim::Design::TageL),
                               4),
        64);
    const TraceResult r = ev.evaluate(tr, 10'000);
    EXPECT_GT(r.accuracy(), 0.97);
    EXPECT_EQ(r.branches, 30'000u);
}

TEST(Trace, EvaluatorRespectsWarmup)
{
    const prog::Program p = prog::buildWorkload(
        prog::WorkloadLibrary::profile("xz"));
    const BranchTrace tr = recordTrace(p, 10'000);
    TraceDrivenEvaluator ev(
        bpu::ComposedPredictor(sim::buildTopology(sim::Design::B2), 4),
        16);
    const TraceResult r = ev.evaluate(tr, 9'000);
    EXPECT_EQ(r.branches, 1'000u);
}

TEST(Trace, IdealizedEvaluationBeatsOrMatchesInCore)
{
    // The §II-B property on a correlation-heavy workload: the trace
    // model, blind to speculation effects, reports accuracy at least
    // as high as the speculating core achieves.
    const prog::Program p = prog::buildWorkload(
        prog::WorkloadLibrary::profile("deepsjeng"));
    const BranchTrace tr = recordTrace(p, 30'000);
    TraceDrivenEvaluator ev(
        bpu::ComposedPredictor(sim::buildTopology(sim::Design::TageL),
                               4),
        64);
    const TraceResult traceRes = ev.evaluate(tr, 10'000);

    sim::SimConfig cfg = sim::makeConfig(sim::Design::TageL);
    cfg.maxInsts = 60'000;
    cfg.warmupInsts = 20'000;
    sim::Simulator s(p, sim::buildTopology(sim::Design::TageL), cfg);
    const auto coreRes = s.run();

    EXPECT_GE(traceRes.accuracy(), coreRes.accuracy() - 0.01);
}

} // namespace
} // namespace cobra::trace
