/**
 * @file
 * Binary trace container (trace/format.hpp) and importer
 * (trace/convert.hpp) tests: write/read round trips across block
 * boundaries, the seekable index, cursor equivalence, structured
 * rejection of every corruption class, content-addressed digests, and
 * golden-fixture round trips for the CBP text and bzip2'd Alpha
 * import formats.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <random>
#include <sstream>
#include <vector>

#include <unistd.h>

#include "guard/errors.hpp"
#include "trace/convert.hpp"
#include "trace/format.hpp"
#include "trace/replay.hpp"

using namespace cobra;

namespace {

std::string
scratchDir(const char* leaf)
{
    // ctest runs each test as its own process; keep scratch paths
    // per-process so parallel tests never clobber each other's files.
    const std::filesystem::path p =
        std::filesystem::temp_directory_path() /
        (std::string(leaf) + "." + std::to_string(::getpid()));
    std::filesystem::remove_all(p);
    std::filesystem::create_directories(p);
    return p.string();
}

/** Deterministic pseudo-random record stream, branch-trace shaped. */
std::vector<trace::TraceRecord>
syntheticRecords(std::size_t n, std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::vector<trace::TraceRecord> out;
    out.reserve(n);
    Addr pc = 0x1000;
    for (std::size_t i = 0; i < n; ++i) {
        trace::TraceRecord r;
        // Mostly small forward deltas, occasionally a far jump — the
        // shape the zigzag-varint encoder is tuned for.
        pc += (rng() % 64 == 0) ? (rng() % (1u << 20)) * 4
                                : 4 + (rng() % 8) * 4;
        r.pc = pc;
        const unsigned kind = rng() % 16;
        if (kind == 0) {
            r.type = trace::RecordType::IndirectJump;
            r.taken = true;
            r.target = pc + 4 + (rng() % 1024) * 4;
        } else if (kind == 1) {
            r.type = trace::RecordType::IndirectCall;
            r.taken = true;
            r.target = pc + 4 + (rng() % 1024) * 4;
        } else {
            r.type = trace::RecordType::Cond;
            r.taken = (rng() & 1) != 0;
            r.target = r.taken ? pc + 8 + (rng() % 64) * 4
                               : kInvalidAddr;
        }
        r.slot = static_cast<std::uint8_t>((pc / kInstBytes) & 3);
        out.push_back(r);
    }
    return out;
}

std::string
writeTrace(const std::string& path,
           const std::vector<trace::TraceRecord>& recs,
           const std::string& name = "synthetic")
{
    trace::TraceMeta meta;
    meta.kind = trace::TraceKind::External;
    meta.fetchWidth = 4;
    meta.name = name;
    trace::TraceWriter w(path, meta);
    for (const trace::TraceRecord& r : recs)
        w.add(r);
    w.finalize();
    return path;
}

std::vector<std::uint8_t>
readFileBytes(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<std::uint8_t>(
        std::istreambuf_iterator<char>(in),
        std::istreambuf_iterator<char>());
}

void
writeFileBytes(const std::string& path,
               const std::vector<std::uint8_t>& bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

} // namespace

// ---------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------

TEST(TraceFormat, RoundTripsRecordsAcrossBlockBoundaries)
{
    const std::string dir = scratchDir("cobra_fmt_rt");
    // > 2 blocks, with a non-full tail block.
    const auto recs = syntheticRecords(
        2 * trace::TraceFile::kBlockRecords + 1234, 0xAB);
    const std::string path = writeTrace(dir + "/t.cbtr", recs);

    trace::TraceReader reader(path);
    EXPECT_EQ(reader.recordCount(), recs.size());
    EXPECT_EQ(reader.blockCount(), 3u);
    EXPECT_EQ(reader.meta().name, "synthetic");
    EXPECT_EQ(reader.meta().kind, trace::TraceKind::External);

    std::size_t i = 0;
    trace::DecodedBlock blk;
    for (std::size_t b = 0; b < reader.blockCount(); ++b) {
        reader.decodeBlock(b, blk);
        EXPECT_EQ(blk.firstRecord, reader.blockFirstRecord(b));
        for (std::size_t k = 0; k < blk.size(); ++k, ++i) {
            const trace::TraceRecord got = blk.record(k);
            ASSERT_LT(i, recs.size());
            EXPECT_EQ(got.pc, recs[i].pc) << "record " << i;
            EXPECT_EQ(got.target, recs[i].target) << "record " << i;
            EXPECT_EQ(got.type, recs[i].type) << "record " << i;
            EXPECT_EQ(got.taken, recs[i].taken) << "record " << i;
            EXPECT_EQ(got.slot, recs[i].slot) << "record " << i;
        }
    }
    EXPECT_EQ(i, recs.size());
}

TEST(TraceFormat, DecodedTraceMatchesBlockDecode)
{
    const std::string dir = scratchDir("cobra_fmt_dec");
    const auto recs = syntheticRecords(5000, 0xCD);
    const std::string path = writeTrace(dir + "/t.cbtr", recs);

    const auto dec = trace::loadTrace(path);
    ASSERT_EQ(dec->size(), recs.size());
    for (std::size_t i = 0; i < recs.size(); ++i) {
        EXPECT_EQ(dec->pc[i], recs[i].pc);
        EXPECT_EQ(dec->target[i], recs[i].target);
        EXPECT_EQ(dec->typeAt(i), recs[i].type);
        EXPECT_EQ(dec->takenAt(i), recs[i].taken);
        EXPECT_EQ(dec->slotAt(i), recs[i].slot);
    }
}

TEST(TraceFormat, EmptyTraceRoundTrips)
{
    const std::string dir = scratchDir("cobra_fmt_empty");
    const std::string path =
        writeTrace(dir + "/t.cbtr", {}, "nothing");
    trace::TraceReader reader(path);
    EXPECT_EQ(reader.recordCount(), 0u);
    EXPECT_EQ(reader.blockCount(), 0u);
    EXPECT_EQ(trace::loadTrace(path)->size(), 0u);
}

TEST(TraceFormat, FindBlockLocatesEveryRecord)
{
    const std::string dir = scratchDir("cobra_fmt_find");
    const auto recs = syntheticRecords(
        3 * trace::TraceFile::kBlockRecords + 17, 0xEF);
    trace::TraceReader reader(writeTrace(dir + "/t.cbtr", recs));

    const std::uint64_t kBlk = trace::TraceFile::kBlockRecords;
    for (std::uint64_t idx :
         {std::uint64_t(0), kBlk - 1, kBlk, 2 * kBlk + 5,
          std::uint64_t(recs.size() - 1)}) {
        const std::size_t b = reader.findBlock(idx);
        EXPECT_LE(reader.blockFirstRecord(b), idx);
        EXPECT_LT(idx,
                  reader.blockFirstRecord(b) + reader.blockRecords(b));
    }
}

TEST(TraceFormat, StreamCursorMatchesTraceCursorIncludingSeeks)
{
    const std::string dir = scratchDir("cobra_fmt_cur");
    const auto recs = syntheticRecords(
        2 * trace::TraceFile::kBlockRecords + 99, 0x11);
    const std::string path = writeTrace(dir + "/t.cbtr", recs);

    const auto dec = trace::loadTrace(path);
    trace::TraceCursor a(dec);
    trace::StreamCursor b(path);

    auto pump = [&](exec::CfSource& c, std::size_t i) {
        if (recs[i].type == trace::RecordType::Cond)
            return c.nextCond(recs[i].pc) == recs[i].taken;
        return c.nextIndirect(recs[i].pc) == recs[i].target;
    };
    // Forward walk.
    for (std::size_t i = 0; i < 6000; ++i) {
        EXPECT_TRUE(pump(a, i)) << i;
        EXPECT_TRUE(pump(b, i)) << i;
        EXPECT_EQ(a.position(), b.position());
    }
    // Seek backwards across a block boundary (the warp-restore path)
    // and to the tail.
    const std::uint64_t kBlk = trace::TraceFile::kBlockRecords;
    for (std::uint64_t s : {std::uint64_t(10), kBlk + 3,
                            std::uint64_t(recs.size() - 4)}) {
        a.seek(s);
        b.seek(s);
        for (std::size_t i = s; i < s + 3; ++i) {
            EXPECT_TRUE(pump(a, i)) << i;
            EXPECT_TRUE(pump(b, i)) << i;
        }
    }
}

TEST(TraceFormat, CursorDetectsDesyncAndExhaustion)
{
    const std::string dir = scratchDir("cobra_fmt_desync");
    std::vector<trace::TraceRecord> recs;
    trace::TraceRecord r;
    r.pc = 0x1000;
    r.type = trace::RecordType::Cond;
    r.taken = true;
    r.target = 0x2000;
    recs.push_back(r);
    const auto dec =
        trace::loadTrace(writeTrace(dir + "/t.cbtr", recs));

    {
        trace::TraceCursor c(dec);
        // Wrong site: the replayed program asks about a different pc.
        EXPECT_THROW((void)c.nextCond(0x9999),
                     guard::CheckpointError);
    }
    {
        trace::TraceCursor c(dec);
        // Wrong record type at the right pc.
        EXPECT_THROW((void)c.nextIndirect(0x1000),
                     guard::CheckpointError);
    }
    {
        trace::TraceCursor c(dec);
        EXPECT_TRUE(c.nextCond(0x1000));
        // Past the end: exhaustion names the capture budget.
        EXPECT_THROW((void)c.nextCond(0x1004),
                     guard::CheckpointError);
    }
}

// ---------------------------------------------------------------------
// Corruption classes
// ---------------------------------------------------------------------

namespace {

/** Write a valid trace, mutate it with @p mutate, expect rejection. */
void
expectRejected(const char* leaf,
               const std::function<void(std::vector<std::uint8_t>&)>&
                   mutate,
               bool at_decode = false)
{
    const std::string dir = scratchDir(leaf);
    const auto recs = syntheticRecords(6000, 0x77);
    const std::string path = writeTrace(dir + "/t.cbtr", recs);
    auto bytes = readFileBytes(path);
    mutate(bytes);
    const std::string bad = dir + "/bad.cbtr";
    writeFileBytes(bad, bytes);
    if (at_decode) {
        // Header/index still validate; the damage is caught at the
        // first decode of the touched block.
        EXPECT_THROW(
            {
                trace::TraceReader reader(bad);
                trace::DecodedBlock blk;
                for (std::size_t b = 0; b < reader.blockCount(); ++b)
                    reader.decodeBlock(b, blk);
            },
            guard::CheckpointError);
    } else {
        EXPECT_THROW(trace::TraceReader reader(bad),
                     guard::CheckpointError);
    }
}

} // namespace

TEST(TraceFormat, RejectsBadMagic)
{
    expectRejected("cobra_fmt_magic",
                   [](std::vector<std::uint8_t>& b) { b[0] ^= 0xFF; });
}

TEST(TraceFormat, RejectsVersionSkew)
{
    // A future version must be refused up front, not misparsed.
    expectRejected("cobra_fmt_ver",
                   [](std::vector<std::uint8_t>& b) { b[4] += 1; });
}

TEST(TraceFormat, RejectsHeaderTampering)
{
    // Flip a bit inside the checksummed header region (record count).
    expectRejected("cobra_fmt_hdr",
                   [](std::vector<std::uint8_t>& b) { b[40] ^= 1; });
}

TEST(TraceFormat, RejectsTruncation)
{
    expectRejected("cobra_fmt_trunc",
                   [](std::vector<std::uint8_t>& b) {
                       b.resize(b.size() / 2);
                   });
}

TEST(TraceFormat, RejectsShortHeader)
{
    expectRejected("cobra_fmt_short",
                   [](std::vector<std::uint8_t>& b) { b.resize(10); });
}

TEST(TraceFormat, RejectsPayloadCorruption)
{
    // A flipped payload byte fails the whole-payload checksum at open.
    expectRejected("cobra_fmt_pay",
                   [](std::vector<std::uint8_t>& b) {
                       b[trace::TraceFile::kHeaderBytes + 40] ^= 0x10;
                   });
}

TEST(TraceFormat, RejectsIndexCorruption)
{
    // The index sits at the tail; damage its last entry.
    expectRejected("cobra_fmt_idx",
                   [](std::vector<std::uint8_t>& b) {
                       b[b.size() - 3] ^= 0x40;
                   });
}

TEST(TraceFormat, RejectsMissingFile)
{
    EXPECT_THROW(trace::TraceReader r("no-such-trace.cbtr"),
                 guard::CheckpointError);
}

TEST(TraceFormat, UnfinalizedWriterLeavesNoFile)
{
    const std::string dir = scratchDir("cobra_fmt_unfin");
    const std::string path = dir + "/partial.cbtr";
    {
        trace::TraceMeta meta;
        meta.kind = trace::TraceKind::External;
        trace::TraceWriter w(path, meta);
        for (const auto& r : syntheticRecords(5000, 0x3))
            w.add(r);
        // No finalize(): simulate a crash mid-capture.
    }
    EXPECT_FALSE(std::filesystem::exists(path));
}

// ---------------------------------------------------------------------
// Content addressing
// ---------------------------------------------------------------------

TEST(TraceFormat, ContentDigestFollowsBytesNotPaths)
{
    const std::string dir = scratchDir("cobra_fmt_digest");
    const auto recs = syntheticRecords(3000, 0x55);
    const std::string p1 = writeTrace(dir + "/a.cbtr", recs);
    const std::string p2 = dir + "/copy.cbtr";
    std::filesystem::copy_file(p1, p2);
    const std::string p3 =
        writeTrace(dir + "/other.cbtr", syntheticRecords(3000, 0x56));

    trace::TraceReader r1(p1), r2(p2), r3(p3);
    EXPECT_EQ(r1.contentDigest(), r2.contentDigest());
    EXPECT_NE(r1.contentDigest(), r3.contentDigest());
}

// ---------------------------------------------------------------------
// CBP text import (golden fixtures)
// ---------------------------------------------------------------------

namespace {

/** The canonical fixture: every outcome spelling, comments, blanks. */
const char* kCbpFixture =
    "# CBP-style conditional branch trace\n"
    "0x1000 T\n"
    "0x1008 N\n"
    "\n"
    "1010 t\n"
    "1018 n\n"
    "0x1000 1\n"
    "0x1008 0\n";

} // namespace

TEST(TraceConvert, CbpTextGoldenRoundTrip)
{
    const std::string dir = scratchDir("cobra_cvt_cbp");
    const std::string in = dir + "/fix.cbp";
    {
        std::ofstream out(in);
        out << kCbpFixture;
    }
    const trace::ImportStats st =
        trace::convertCbpFile(in, dir + "/fix.cbtr", "fix");
    EXPECT_EQ(st.lines, 6u);
    EXPECT_EQ(st.records, 6u);
    EXPECT_EQ(st.taken, 3u);

    const auto dec = trace::loadTrace(dir + "/fix.cbtr");
    ASSERT_EQ(dec->size(), 6u);
    EXPECT_EQ(dec->meta.kind, trace::TraceKind::External);
    EXPECT_EQ(dec->meta.name, "fix");
    EXPECT_EQ(dec->meta.condCount, 6u);
    const Addr wantPc[] = {0x1000, 0x1008, 0x1010,
                           0x1018, 0x1000, 0x1008};
    const bool wantTaken[] = {true, false, true, false, true, false};
    for (std::size_t i = 0; i < 6; ++i) {
        EXPECT_EQ(dec->pc[i], wantPc[i]) << i;
        EXPECT_EQ(dec->takenAt(i), wantTaken[i]) << i;
        EXPECT_EQ(dec->typeAt(i), trace::RecordType::Cond);
        // Slots derive from the pc exactly as capture mode does.
        EXPECT_EQ(dec->slotAt(i),
                  unsigned((wantPc[i] / kInstBytes) & 3));
    }
}

TEST(TraceConvert, MalformedCbpLinesAreStructuredErrors)
{
    trace::TraceRecord r;
    EXPECT_FALSE(trace::parseCbpLine("", 1, 4, r));
    EXPECT_FALSE(trace::parseCbpLine("# comment", 2, 4, r));
    EXPECT_THROW(trace::parseCbpLine("zzzz T", 3, 4, r),
                 guard::CheckpointError);
    EXPECT_THROW(trace::parseCbpLine("0x1000 X", 4, 4, r),
                 guard::CheckpointError);
    EXPECT_THROW(trace::parseCbpLine("0x1000", 5, 4, r),
                 guard::CheckpointError);
    EXPECT_THROW(trace::parseCbpLine("0x1000 T extra", 6, 4, r),
                 guard::CheckpointError);
    try {
        trace::parseCbpLine("0x1000 X", 42, 4, r);
        FAIL() << "expected CheckpointError";
    } catch (const guard::CheckpointError& e) {
        EXPECT_NE(std::string(e.what()).find("42"), std::string::npos)
            << "error must carry the line number: " << e.what();
    }
    const std::string dir = scratchDir("cobra_cvt_bad");
    const std::string in = dir + "/bad.cbp";
    {
        std::ofstream out(in);
        out << "0x1000 T\n0x1008 Q\n";
    }
    const std::string outPath = dir + "/bad.cbtr";
    EXPECT_THROW(trace::convertCbpFile(in, outPath, "bad"),
                 guard::CheckpointError);
    // The failed conversion must not leave a plausible output file.
    EXPECT_FALSE(std::filesystem::exists(outPath));
}

TEST(TraceConvert, MissingAndEmptyInputsAreStructuredErrors)
{
    const std::string dir = scratchDir("cobra_cvt_miss");
    EXPECT_THROW(trace::convertCbpFile(dir + "/absent.cbp",
                                       dir + "/o.cbtr", "x"),
                 guard::CheckpointError);
    const std::string empty = dir + "/empty.cbp";
    std::ofstream(empty).close();
    EXPECT_THROW(
        trace::convertCbpFile(empty, dir + "/o.cbtr", "x"),
        guard::CheckpointError);
}

// ---------------------------------------------------------------------
// bzip2'd Alpha import (golden fixture, embedded bytes)
// ---------------------------------------------------------------------

namespace {

/** `printf '1000 T\n1008 N\n1000 T\n1008 N\n1010 t\n' | bzip2 -c` */
const unsigned char kAlphaBz2Fixture[] = {
    0x42, 0x5a, 0x68, 0x39, 0x31, 0x41, 0x59, 0x26, 0x53, 0x59, 0xb2,
    0xec, 0x94, 0xba, 0x00, 0x00, 0x0b, 0xde, 0x80, 0x00, 0x10, 0x40,
    0x00, 0x60, 0x40, 0x00, 0x01, 0x04, 0x00, 0x04, 0x00, 0x20, 0x00,
    0x21, 0x22, 0x8c, 0xc8, 0x43, 0x02, 0x2c, 0xa3, 0xa4, 0x45, 0x63,
    0x43, 0x51, 0x0c, 0xa8, 0xe1, 0x77, 0x24, 0x53, 0x85, 0x09, 0x0b,
    0x2e, 0xc9, 0x4b, 0xa0};

} // namespace

TEST(TraceConvert, AlphaBz2GoldenRoundTrip)
{
    const std::string dir = scratchDir("cobra_cvt_bz2");
    const std::string in = dir + "/alpha.bz2";
    writeFileBytes(in,
                   std::vector<std::uint8_t>(
                       kAlphaBz2Fixture,
                       kAlphaBz2Fixture + sizeof(kAlphaBz2Fixture)));
    const std::string out = dir + "/alpha.cbtr";
    if (!trace::bz2Available()) {
        // Builds without libbz2 must refuse with a structured error,
        // not crash or silently emit an empty trace.
        EXPECT_THROW(trace::convertAlphaBz2File(in, out, "alpha"),
                     guard::CheckpointError);
        return;
    }
    const trace::ImportStats st =
        trace::convertAlphaBz2File(in, out, "alpha");
    EXPECT_EQ(st.records, 5u);
    EXPECT_EQ(st.taken, 3u);
    const auto dec = trace::loadTrace(out);
    ASSERT_EQ(dec->size(), 5u);
    EXPECT_EQ(dec->pc[0], 0x1000u);
    EXPECT_TRUE(dec->takenAt(0));
    EXPECT_EQ(dec->pc[1], 0x1008u);
    EXPECT_FALSE(dec->takenAt(1));
    EXPECT_EQ(dec->pc[4], 0x1010u);
    EXPECT_TRUE(dec->takenAt(4));
}

TEST(TraceConvert, CorruptBz2StreamIsAStructuredError)
{
    if (!trace::bz2Available())
        GTEST_SKIP() << "build has no libbz2";
    const std::string dir = scratchDir("cobra_cvt_bz2bad");
    std::vector<std::uint8_t> bytes(
        kAlphaBz2Fixture, kAlphaBz2Fixture + sizeof(kAlphaBz2Fixture));
    bytes[20] ^= 0xFF;
    const std::string in = dir + "/corrupt.bz2";
    writeFileBytes(in, bytes);
    EXPECT_THROW(
        trace::convertAlphaBz2File(in, dir + "/o.cbtr", "corrupt"),
        guard::CheckpointError);
}
