#include <gtest/gtest.h>

#include "bpu/topology.hpp"
#include "components/bim.hpp"
#include "components/btb.hpp"
#include "components/loop.hpp"
#include "components/tourney.hpp"

namespace cobra::bpu {
namespace {

using namespace cobra::comps;

HbimParams
bimParams(unsigned latency)
{
    HbimParams p;
    p.sets = 64;
    p.latency = latency;
    p.fetchWidth = 4;
    return p;
}

TEST(Topology, DescribePaperNotation)
{
    Topology topo;
    auto* loop = [&] {
        LoopParams p;
        p.entries = 32;
        p.latency = 3;
        p.fetchWidth = 4;
        return topo.make<LoopPredictor>("LOOP", p);
    }();
    auto* bim = topo.make<Hbim>("BIM", bimParams(2));
    MicroBtbParams up;
    up.entries = 8;
    up.fetchWidth = 4;
    auto* ubtb = topo.make<MicroBtb>("uBTB", up);
    topo.setRoot(topo.chainOf({loop, bim, ubtb}));
    EXPECT_EQ(topo.describe(), "LOOP3 > BIM2 > uBTB1");
}

TEST(Topology, DescribeArbNotation)
{
    Topology topo;
    TourneyParams tp;
    tp.sets = 64;
    tp.latency = 3;
    tp.fetchWidth = 4;
    auto* t = topo.make<Tourney>("TOURNEY", tp);
    auto* g = topo.make<Hbim>("GBIM", bimParams(2));
    auto* l = topo.make<Hbim>("LBIM", bimParams(2));
    topo.setRoot(topo.arb(t, {topo.leaf(g), topo.leaf(l)}));
    EXPECT_EQ(topo.describe(), "TOURNEY3 > [GBIM2, LBIM2]");
}

TEST(Topology, DescribeNestedChainInArb)
{
    Topology topo;
    TourneyParams tp;
    tp.sets = 64;
    tp.latency = 3;
    tp.fetchWidth = 4;
    auto* t = topo.make<Tourney>("TOURNEY", tp);
    auto* g = topo.make<Hbim>("GBIM", bimParams(2));
    auto* l = topo.make<Hbim>("LBIM", bimParams(2));
    BtbParams bp;
    bp.sets = 16;
    bp.ways = 2;
    bp.latency = 2;
    bp.fetchWidth = 4;
    auto* btb = topo.make<Btb>("BTB", bp);
    auto side = topo.chain({topo.leaf(g), topo.leaf(btb)});
    topo.setRoot(topo.arb(t, {side, topo.leaf(l)}));
    EXPECT_EQ(topo.describe(), "TOURNEY3 > [(GBIM2 > BTB2), LBIM2]");
}

TEST(Topology, ValidateRejectsMissingRoot)
{
    Topology topo;
    EXPECT_THROW(topo.validate(), std::logic_error);
}

TEST(Topology, ValidateRejectsDuplicateComponent)
{
    Topology topo;
    auto* bim = topo.make<Hbim>("BIM", bimParams(2));
    topo.setRoot(topo.chain({topo.leaf(bim), topo.leaf(bim)}));
    EXPECT_THROW(topo.validate(), std::logic_error);
}

TEST(Topology, ArbRequiresArbiterComponent)
{
    Topology topo;
    auto* bim = topo.make<Hbim>("BIM", bimParams(2));
    auto* other = topo.make<Hbim>("OTHER", bimParams(2));
    EXPECT_THROW(topo.arb(bim, {topo.leaf(other)}), std::logic_error);
}

TEST(Topology, MaxLatency)
{
    Topology topo;
    auto* a = topo.make<Hbim>("A", bimParams(2));
    auto* b = topo.make<Hbim>("B", bimParams(3));
    topo.setRoot(topo.chainOf({b, a}));
    EXPECT_EQ(topo.maxLatency(), 3u);
}

TEST(Topology, ComponentListPreOrderHighestPriorityFirst)
{
    Topology topo;
    auto* a = topo.make<Hbim>("A", bimParams(2));
    auto* b = topo.make<Hbim>("B", bimParams(2));
    auto* c = topo.make<Hbim>("C", bimParams(2));
    topo.setRoot(topo.chainOf({a, b, c}));
    const auto list = topo.componentList();
    ASSERT_EQ(list.size(), 3u);
    EXPECT_EQ(list[0]->name(), "A");
    EXPECT_EQ(list[1]->name(), "B");
    EXPECT_EQ(list[2]->name(), "C");
}

TEST(Topology, PipelineDiagramListsStages)
{
    Topology topo;
    auto* a = topo.make<Hbim>("SLOW", bimParams(3));
    auto* b = topo.make<Hbim>("FAST", bimParams(2));
    topo.setRoot(topo.chainOf({a, b}));
    const std::string d = topo.pipelineDiagram();
    EXPECT_NE(d.find("Fetch-2: FAST"), std::string::npos);
    EXPECT_NE(d.find("Fetch-3: SLOW"), std::string::npos);
    EXPECT_NE(d.find("Fetch-1: (prediction carried over)"),
              std::string::npos);
}

TEST(Topology, SingletonChainCollapses)
{
    Topology topo;
    auto* a = topo.make<Hbim>("A", bimParams(2));
    const NodeRef r = topo.chain({topo.leaf(a)});
    topo.setRoot(r);
    EXPECT_NO_THROW(topo.validate());
    EXPECT_EQ(topo.describe(), "A2");
}

} // namespace
} // namespace cobra::bpu
