/**
 * @file
 * Path-history provider tests (the §IV-B3 "new history provider"
 * extension): register mechanics, BPU integration (speculative push
 * at finalize, snapshot repair on mispredict), and the PathHash HBIM
 * index mode.
 */

#include <gtest/gtest.h>

#include "bpu/bpu.hpp"
#include "bpu/phist.hpp"
#include "components/bim.hpp"
#include "test_util.hpp"

namespace cobra::bpu {
namespace {

TEST(PathHistoryProvider, FoldsTakenPcs)
{
    PathHistoryProvider p(16, 3);
    EXPECT_EQ(p.current(), 0u);
    p.push(0x1000);
    const std::uint64_t one = p.current();
    EXPECT_NE(one, 0u);
    p.push(0x2000);
    EXPECT_NE(p.current(), one);
    // Bounded by the configured length.
    for (int i = 0; i < 100; ++i)
        p.push(0x3000 + i * 4);
    EXPECT_LE(p.current(), maskBits(16));
}

TEST(PathHistoryProvider, OrderSensitive)
{
    PathHistoryProvider a(32, 3), b(32, 3);
    a.push(0x1000);
    a.push(0x2000);
    b.push(0x2000);
    b.push(0x1000);
    EXPECT_NE(a.current(), b.current());
}

TEST(PathHistoryProvider, SnapshotRestore)
{
    PathHistoryProvider p(32, 3);
    p.push(0x4000);
    const std::uint64_t snap = p.current();
    p.push(0x5000);
    p.restore(snap);
    EXPECT_EQ(p.current(), snap);
}

TEST(PathHistoryProvider, Storage)
{
    PathHistoryProvider p(48, 3);
    EXPECT_EQ(p.storageBits(), 48u);
    EXPECT_GT(p.physicalCost().flopBits, 0u);
}

TEST(PathHistoryBpu, CapturedAtFetch1AndRepairedOnMispredict)
{
    // A path-indexed HBIM through the full BPU protocol: the entry's
    // phist must round-trip to update time, and a mispredict must
    // restore the speculative register.
    Topology topo;
    comps::HbimParams hp;
    hp.sets = 256;
    hp.mode = comps::IndexMode::PathHash;
    hp.histBits = 10;
    hp.latency = 2;
    hp.fetchWidth = 4;
    topo.setRoot(topo.leaf(topo.make<comps::Hbim>("PBIM", hp)));
    BpuConfig cfg;
    cfg.fetchWidth = 4;
    cfg.historyFileEntries = 8;
    BranchPredictorUnit bpu(std::move(topo), cfg);

    // Fetch a taken-jump packet to push path history.
    auto fetchTaken = [&](Addr pc) {
        QueryState q;
        bpu.beginQuery(q, pc, 4);
        bpu.stage(q, 1);
        bpu.captureHistory(q);
        PredictionBundle b = bpu.stage(q, 2);
        b.slots[0].valid = true;
        b.slots[0].taken = true;
        b.slots[0].type = CfiType::Jal;
        FinalizeArgs args;
        PredictionBundle hold = b;
        args.finalPred = &hold;
        args.fetchedSlots = 1;
        return bpu.finalize(q, args);
    };

    const std::uint64_t before = bpu.pathHistory().current();
    const FtqPos a = fetchTaken(0x1000);
    EXPECT_NE(bpu.pathHistory().current(), before)
        << "taken CFIs must push path history";
    EXPECT_EQ(bpu.historyFile().at(a).phist, before)
        << "the entry records the predict-time value";

    const std::uint64_t afterA = bpu.pathHistory().current();
    fetchTaken(0x2000);
    fetchTaken(0x3000);
    EXPECT_NE(bpu.pathHistory().current(), afterA);

    // Mispredict at entry a: path history restored to a's predict-
    // time value plus a's resolved CFI.
    BranchResolution res;
    res.ftq = a;
    res.slot = 0;
    res.type = CfiType::Jal;
    res.taken = true;
    res.target = 0x9000;
    res.mispredicted = true;
    bpu.resolve(res);
    EXPECT_EQ(bpu.pathHistory().current(), afterA)
        << "restore(snapshot) + re-push of the resolved CFI";
}

TEST(PathHistoryBpu, PathHashBimLearnsPathCorrelatedBranch)
{
    // Outcome depends on which of two call sites reached the branch:
    // identical ghist/lhist, different path — only a path-indexed
    // table separates the contexts.
    comps::HbimParams hp;
    hp.sets = 256;
    hp.mode = comps::IndexMode::PathHash;
    hp.histBits = 12;
    hp.latency = 2;
    hp.fetchWidth = 4;
    comps::Hbim bim("PBIM", hp);

    int correct = 0, total = 0;
    for (int i = 0; i < 4000; ++i) {
        const bool fromA = i % 2 == 0;
        const std::uint64_t phist = fromA ? 0x111 : 0x222;
        const bool actual = fromA; // outcome == which path

        bpu::PredictContext ctx;
        ctx.pc = 0x8000;
        ctx.validSlots = 4;
        HistoryRegister gh(32);
        ctx.ghist = &gh;
        ctx.phist = phist;
        bpu::PredictionBundle b;
        b.width = 4;
        bpu::Metadata meta{};
        bim.predict(ctx, b, meta);
        const bool pred = b.slots[1].taken;
        if (i > 2000) {
            ++total;
            correct += pred == actual;
        }

        bpu::ResolveEvent ev;
        ev.pc = 0x8000;
        ev.ghist = &gh;
        ev.phist = phist;
        ev.meta = &meta;
        ev.brMask[1] = true;
        ev.takenMask[1] = actual;
        ev.predicted = &b;
        bim.update(ev);
    }
    EXPECT_GT(static_cast<double>(correct) / total, 0.99)
        << "a ghist/lhist-blind context is separable by path";
}

} // namespace
} // namespace cobra::bpu
