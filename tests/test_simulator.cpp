#include <gtest/gtest.h>

#include "program/workload.hpp"
#include "sim/presets.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace cobra::sim {
namespace {

SimConfig
quick(Design d)
{
    SimConfig cfg = makeConfig(d);
    cfg.maxInsts = 30'000;
    cfg.warmupInsts = 10'000;
    return cfg;
}

TEST(Simulator, Deterministic)
{
    const auto prof = prog::WorkloadLibrary::profile("leela");
    const prog::Program p = prog::buildWorkload(prof);
    Simulator a(p, buildTopology(Design::TageL), quick(Design::TageL));
    Simulator b(p, buildTopology(Design::TageL), quick(Design::TageL));
    const auto ra = a.run();
    const auto rb = b.run();
    EXPECT_EQ(ra.cycles, rb.cycles);
    EXPECT_EQ(ra.insts, rb.insts);
    EXPECT_EQ(ra.condMispredicts, rb.condMispredicts);
}

TEST(Simulator, MetricsConsistent)
{
    const auto prof = prog::WorkloadLibrary::profile("x264");
    const prog::Program p = prog::buildWorkload(prof);
    Simulator s(p, buildTopology(Design::B2), quick(Design::B2));
    const auto r = s.run();
    EXPECT_FALSE(r.deadlocked);
    EXPECT_GE(r.insts, 30'000u);
    EXPECT_GT(r.cycles, r.insts / 6);
    EXPECT_GE(r.cfis, r.condBranches);
    EXPECT_LE(r.condMispredicts, r.condBranches);
    EXPECT_NEAR(r.ipc(), static_cast<double>(r.insts) / r.cycles,
                1e-12);
    EXPECT_GE(r.accuracy(), 0.0);
    EXPECT_LE(r.accuracy(), 1.0);
}

TEST(Simulator, WarmupExcludedFromMetrics)
{
    const auto prof = prog::WorkloadLibrary::profile("xz");
    const prog::Program p = prog::buildWorkload(prof);
    SimConfig cfg = quick(Design::B2);
    cfg.warmupInsts = 20'000;
    cfg.maxInsts = 10'000;
    Simulator s(p, buildTopology(Design::B2), cfg);
    const auto r = s.run();
    EXPECT_NEAR(static_cast<double>(r.insts), 10'000.0, 64.0);
}

TEST(Simulator, EveryDesignRunsEveryWorkload)
{
    // Smoke matrix: all designs complete all SPEC proxies without
    // deadlock (short runs).
    for (const auto& wl : prog::WorkloadLibrary::specint17()) {
        const prog::Program p =
            prog::buildWorkload(prog::WorkloadLibrary::profile(wl));
        for (Design d : paperDesigns()) {
            SimConfig cfg = quick(d);
            cfg.maxInsts = 8'000;
            cfg.warmupInsts = 2'000;
            Simulator s(p, buildTopology(d), cfg);
            const auto r = s.run();
            EXPECT_FALSE(r.deadlocked)
                << wl << "/" << designName(d);
            EXPECT_GT(r.ipc(), 0.02) << wl << "/" << designName(d);
        }
    }
}

TEST(Simulator, TickOnceAdvancesCycle)
{
    const auto prof = prog::WorkloadLibrary::profile("x264");
    const prog::Program p = prog::buildWorkload(prof);
    Simulator s(p, buildTopology(Design::B2), quick(Design::B2));
    EXPECT_EQ(s.cycles(), 0u);
    s.tickOnce();
    s.tickOnce();
    EXPECT_EQ(s.cycles(), 2u);
}

TEST(Simulator, MaxCyclesBoundsRunaway)
{
    const auto prof = prog::WorkloadLibrary::profile("mcf");
    const prog::Program p = prog::buildWorkload(prof);
    SimConfig cfg = quick(Design::B2);
    cfg.maxCycles = 2'000;
    cfg.warmupInsts = 1'000'000'000; // unreachable
    Simulator s(p, buildTopology(Design::B2), cfg);
    const auto r = s.run();
    EXPECT_LE(s.cycles(), 2'100u);
    (void)r;
}

} // namespace
} // namespace cobra::sim
