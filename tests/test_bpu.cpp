#include <gtest/gtest.h>

#include "bpu/bpu.hpp"

namespace cobra::bpu {
namespace {

/** Records every event it receives, for protocol verification. */
class Recorder : public PredictorComponent
{
  public:
    Recorder(std::string name, unsigned latency, bool use_lhist = false)
        : PredictorComponent(std::move(name), latency, 4),
          useLhist_(use_lhist)
    {
    }

    unsigned metaBits() const override { return 16; }
    bool usesLocalHistory() const override { return useLhist_; }

    void
    predict(const PredictContext& ctx, PredictionBundle& inout,
            Metadata& meta) override
    {
        (void)inout;
        meta[0] = ++stamp_;
        lastPredictPc = ctx.pc;
    }

    void fire(const FireEvent& ev) override
    {
        ++fires;
        lastFireMeta = (*ev.meta)[0];
    }
    void mispredict(const ResolveEvent& ev) override
    {
        ++mispredicts;
        lastEventMeta = (*ev.meta)[0];
    }
    void repair(const ResolveEvent& ev) override
    {
        ++repairs;
        repairMetas.push_back((*ev.meta)[0]);
    }
    void update(const ResolveEvent& ev) override
    {
        ++updates;
        updatePcs.push_back(ev.pc);
        lastEventMeta = (*ev.meta)[0];
        lastUpdateGhist = *ev.ghist;
    }

    std::uint64_t storageBits() const override { return 128; }

    bool useLhist_ = false;
    std::uint64_t stamp_ = 0;
    Addr lastPredictPc = 0;
    int fires = 0, mispredicts = 0, repairs = 0, updates = 0;
    std::uint64_t lastFireMeta = 0, lastEventMeta = 0;
    std::vector<std::uint64_t> repairMetas;
    std::vector<Addr> updatePcs;
    HistoryRegister lastUpdateGhist{1};
};

struct BpuFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        Topology topo;
        rec = topo.make<Recorder>("REC", 2);
        topo.setRoot(topo.leaf(rec));
        BpuConfig cfg;
        cfg.fetchWidth = 4;
        cfg.historyFileEntries = 8;
        cfg.ghistBits = 32;
        bpu = std::make_unique<BranchPredictorUnit>(std::move(topo),
                                                    cfg);
    }

    /** Run a full query and finalize a packet with a branch at slot 1. */
    FtqPos
    fetchPacket(Addr pc, bool predTaken)
    {
        QueryState q;
        bpu->beginQuery(q, pc, 4);
        bpu->stage(q, 1);
        bpu->captureHistory(q);
        PredictionBundle b = bpu->stage(q, 2);
        b.slots[1].valid = true;
        b.slots[1].taken = predTaken;
        b.slots[1].type = CfiType::Br;
        lastBundle = b;
        FinalizeArgs args;
        args.finalPred = &lastBundle;
        args.brMask[1] = true;
        args.fetchedSlots = predTaken ? 2 : 4;
        return bpu->finalize(q, args);
    }

    void
    resolveBranch(FtqPos pos, bool taken, bool mispredicted)
    {
        BranchResolution res;
        res.ftq = pos;
        res.slot = 1;
        res.type = CfiType::Br;
        res.taken = taken;
        res.target = taken ? 0x9000 : kInvalidAddr;
        res.mispredicted = mispredicted;
        bpu->resolve(res);
    }

    Recorder* rec = nullptr;
    std::unique_ptr<BranchPredictorUnit> bpu;
    PredictionBundle lastBundle;
};

TEST_F(BpuFixture, FireDeliveredAtFinalize)
{
    fetchPacket(0x1000, false);
    EXPECT_EQ(rec->fires, 1);
    EXPECT_EQ(rec->lastFireMeta, 1u) << "metadata visible at fire";
}

TEST_F(BpuFixture, CommitUpdateFlowsThroughStateMachine)
{
    const FtqPos p = fetchPacket(0x1000, false);
    resolveBranch(p, false, false);
    bpu->commitPacket(p);
    EXPECT_EQ(rec->updates, 0) << "updates wait for the machine tick";
    bpu->tick();
    EXPECT_EQ(rec->updates, 1);
    EXPECT_EQ(rec->updatePcs.front(), 0x1000u);
    EXPECT_EQ(rec->lastEventMeta, 1u) << "metadata round-trips";
    EXPECT_TRUE(bpu->historyFile().empty());
}

TEST_F(BpuFixture, UpdatesDequeueInProgramOrder)
{
    const FtqPos a = fetchPacket(0x1000, false);
    const FtqPos b = fetchPacket(0x2000, false);
    resolveBranch(a, false, false);
    resolveBranch(b, false, false);
    bpu->commitPacket(a);
    bpu->commitPacket(b);
    for (int i = 0; i < 4; ++i)
        bpu->tick();
    ASSERT_EQ(rec->updates, 2);
    EXPECT_EQ(rec->updatePcs[0], 0x1000u);
    EXPECT_EQ(rec->updatePcs[1], 0x2000u);
}

TEST_F(BpuFixture, MispredictSquashesYoungerAndQueuesRepairWalk)
{
    const FtqPos a = fetchPacket(0x1000, false);
    fetchPacket(0x2000, false);
    fetchPacket(0x3000, false);
    EXPECT_EQ(bpu->historyFile().size(), 3u);

    resolveBranch(a, true, true); // mispredict at the oldest
    EXPECT_EQ(rec->mispredicts, 1) << "fast mispredict event";
    EXPECT_EQ(bpu->historyFile().size(), 1u) << "younger squashed";
    EXPECT_TRUE(bpu->walkBusy());

    // The walk delivers one repair per cycle, youngest first.
    bpu->tick();
    EXPECT_EQ(rec->repairs, 1);
    EXPECT_TRUE(bpu->walkBusy());
    bpu->tick();
    EXPECT_EQ(rec->repairs, 2);
    EXPECT_FALSE(bpu->walkBusy());
    ASSERT_EQ(rec->repairMetas.size(), 2u);
    EXPECT_GT(rec->repairMetas[0], rec->repairMetas[1])
        << "walk order: youngest entry repaired first";
}

TEST_F(BpuFixture, RepairWalkBlocksCommitUpdates)
{
    const FtqPos a = fetchPacket(0x1000, false);
    const FtqPos b = fetchPacket(0x2000, false);
    fetchPacket(0x3000, false);
    resolveBranch(a, false, false);
    bpu->commitPacket(a);
    // Mispredict on b squashes the third packet and starts a walk.
    resolveBranch(b, true, true);
    bpu->tick(); // walk step, not the commit update
    EXPECT_EQ(rec->updates, 0);
    EXPECT_EQ(rec->repairs, 1);
    bpu->tick(); // now the machine is free for updates
    EXPECT_EQ(rec->updates, 1);
}

TEST_F(BpuFixture, ResolveOnSquashedEntryIsIgnored)
{
    const FtqPos a = fetchPacket(0x1000, false);
    const FtqPos b = fetchPacket(0x2000, false);
    resolveBranch(a, true, true); // squashes b
    EXPECT_NO_FATAL_FAILURE(resolveBranch(b, false, false));
    EXPECT_EQ(rec->mispredicts, 1);
}

TEST_F(BpuFixture, HistoryFileBackpressure)
{
    for (int i = 0; i < 8; ++i)
        fetchPacket(0x1000 + i * 0x10, false);
    EXPECT_FALSE(bpu->canFinalize());
}

TEST_F(BpuFixture, UpdateGhistMatchesPredictTimeCapture)
{
    // Push some speculative history, then fetch; the update event
    // must deliver the same register captured at Fetch-1.
    bpu->pushSpecGhist(true);
    bpu->pushSpecGhist(false);
    bpu->pushSpecGhist(true);
    const FtqPos p = fetchPacket(0x1000, false);
    resolveBranch(p, false, false);
    bpu->commitPacket(p);
    bpu->tick();
    ASSERT_EQ(rec->updates, 1);
    EXPECT_TRUE(rec->lastUpdateGhist.bit(0));
    EXPECT_FALSE(rec->lastUpdateGhist.bit(1));
    EXPECT_TRUE(rec->lastUpdateGhist.bit(2));
}

TEST_F(BpuFixture, SfbResolutionSuppressesTraining)
{
    const FtqPos p = fetchPacket(0x1000, false);
    BranchResolution res;
    res.ftq = p;
    res.slot = 1;
    res.type = CfiType::Br;
    res.taken = true;
    res.target = 0x9000;
    res.mispredicted = false;
    res.sfbConverted = true;
    bpu->resolve(res);
    bpu->commitPacket(p);
    for (int i = 0; i < 3; ++i)
        bpu->tick();
    EXPECT_EQ(rec->updates, 0)
        << "SFB-converted branches must not train (paper §VI-C)";
}

TEST_F(BpuFixture, StorageAndAreaAccounting)
{
    EXPECT_EQ(bpu->componentStorageBits(), 128u);
    EXPECT_GT(bpu->managementStorageBits(), 0u);
    phys::AreaModel model;
    const auto report = bpu->areaReport(model);
    ASSERT_EQ(report.items.size(), 2u); // REC + Meta
    EXPECT_EQ(report.items[0].name, "REC");
    EXPECT_EQ(report.items[1].name, "Meta");
    EXPECT_GT(report.total(), 0.0);
}

TEST_F(BpuFixture, LocalHistoryOmittedWhenUnused)
{
    // The Recorder does not use local history, so the composer only
    // generates a stub provider (paper §IV-B3).
    EXPECT_LE(bpu->localHistory().storageBits(), 1u);
}

} // namespace
} // namespace cobra::bpu
