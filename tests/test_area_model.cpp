#include <gtest/gtest.h>

#include "phys/area_model.hpp"

namespace cobra::phys {
namespace {

TEST(AreaModel, ZeroCostZeroArea)
{
    AreaModel m;
    EXPECT_DOUBLE_EQ(m.area(PhysicalCost{}), 0.0);
}

TEST(AreaModel, SramAreaScalesWithBits)
{
    AreaModel m;
    PhysicalCost a, b;
    a.sramBits = 1000;
    b.sramBits = 2000;
    EXPECT_NEAR(m.area(b), 2 * m.area(a), 1e-9);
}

TEST(AreaModel, ExtraPortsCostMore)
{
    AreaModel m;
    PhysicalCost one, two;
    one.sramBits = two.sramBits = 4096;
    one.sramPorts = {1, 0, 0};
    two.sramPorts = {2, 1, 0};
    EXPECT_GT(m.area(two), m.area(one));
}

TEST(AreaModel, FlopsMoreExpensiveThanSramPerBit)
{
    AreaModel m;
    PhysicalCost sram, flop;
    sram.sramBits = 1024;
    flop.flopBits = 1024;
    EXPECT_GT(m.area(flop), m.area(sram));
}

TEST(AreaModel, CamMoreExpensiveThanSramPerBit)
{
    AreaModel m;
    PhysicalCost sram, cam;
    sram.sramBits = 1024;
    sram.sramPorts = {1, 1, 0};
    cam.camBits = 1024;
    EXPECT_GT(m.area(cam), m.area(sram));
}

TEST(PhysicalCost, Accumulate)
{
    PhysicalCost a, b;
    a.sramBits = 10;
    a.logicGates = 5;
    b.sramBits = 20;
    b.flopBits = 7;
    b.sramPorts = {2, 2, 0};
    a += b;
    EXPECT_EQ(a.sramBits, 30u);
    EXPECT_EQ(a.flopBits, 7u);
    EXPECT_EQ(a.logicGates, 5u);
    EXPECT_EQ(a.sramPorts.total(), 4u);
}

TEST(AreaReport, MergesSameName)
{
    AreaReport r;
    r.add("TAGE", 10.0);
    r.add("TAGE", 5.0);
    r.add("BTB", 1.0);
    EXPECT_EQ(r.items.size(), 2u);
    EXPECT_DOUBLE_EQ(r.total(), 16.0);
}

} // namespace
} // namespace cobra::phys
