/**
 * @file
 * Tests for the library-extension components: statistical corrector,
 * ITTAGE-style indirect predictor, and YAGS.
 */

#include <gtest/gtest.h>

#include "bpu/composer.hpp"
#include "components/bim.hpp"
#include "components/ittage.hpp"
#include "components/stat_corrector.hpp"
#include "components/tage.hpp"
#include "components/yags.hpp"
#include "test_util.hpp"

namespace cobra::comps {
namespace {

// ---------------------------------------------------------------------
// Statistical corrector
// ---------------------------------------------------------------------

StatCorrectorParams
smallSc()
{
    StatCorrectorParams p;
    p.sets = 128;
    p.latency = 3;
    p.fetchWidth = 4;
    return p;
}

TEST(StatCorrector, PassesThroughWithoutIncomingPrediction)
{
    StatCorrector sc("SC", smallSc());
    HistoryRegister gh(64);
    bpu::PredictContext ctx;
    ctx.pc = 0x6000;
    ctx.validSlots = 4;
    ctx.ghist = &gh;
    bpu::PredictionBundle b;
    b.width = 4;
    bpu::Metadata meta{};
    sc.predict(ctx, b, meta);
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_FALSE(b.slots[i].valid);
}

TEST(StatCorrector, LearnsToRevertSystematicallyWrongInput)
{
    // The incoming prediction is always taken; the branch alternates
    // in a way the incoming predictor never learns. The corrector
    // must learn the history contexts where "taken" is wrong.
    StatCorrector sc("SC", smallSc());
    test::SingleBranchDriver drv(sc, 0x6000, 1);
    drv.setBaseTaken(true);
    const auto outs = test::periodicOutcomes(0b01, 2, 8000);
    EXPECT_GT(drv.accuracy(outs), 0.9)
        << "the corrector should revert the wrong half";
}

TEST(StatCorrector, DoesNotHurtCorrectInput)
{
    StatCorrector sc("SC", smallSc());
    test::SingleBranchDriver drv(sc, 0x6000, 0);
    drv.setBaseTaken(true);
    std::vector<bool> always(4000, true);
    EXPECT_GT(drv.accuracy(always), 0.99);
}

TEST(StatCorrector, StorageIncludesAllTables)
{
    StatCorrectorParams p = smallSc();
    StatCorrector sc("SC", p);
    EXPECT_GE(sc.storageBits(),
              std::uint64_t{p.numTables} * p.sets * 4 * 2 * p.ctrBits);
}

TEST(StatCorrector, ComposesAboveTageInATopology)
{
    // TAGE-SC-L completion: SC3 > TAGE3 > BIM2 validates and the
    // composed pipeline evaluates.
    bpu::Topology topo;
    auto* sc = topo.make<StatCorrector>("SC", smallSc());
    auto* tage = topo.make<Tage>("TAGE", TageParams::tageL(4));
    HbimParams hp;
    hp.sets = 256;
    hp.latency = 2;
    hp.fetchWidth = 4;
    auto* bim = topo.make<Hbim>("BIM", hp);
    topo.setRoot(topo.chainOf({sc, tage, bim}));
    EXPECT_NO_THROW(topo.validate());
    EXPECT_EQ(topo.describe(), "SC3 > TAGE3 > BIM2");

    bpu::ComposedPredictor cp(std::move(topo), 4);
    bpu::QueryState q;
    q.reset(0x8000, 4, 3, 4);
    HistoryRegister gh(64);
    q.captureHistory(gh, 0);
    for (unsigned d = 1; d <= 3; ++d)
        EXPECT_NO_FATAL_FAILURE(cp.evaluateStage(q, d));
}

// ---------------------------------------------------------------------
// ITTAGE
// ---------------------------------------------------------------------

IttageParams
smallIttage()
{
    IttageParams p;
    p.sets = 64;
    p.latency = 3;
    p.fetchWidth = 4;
    return p;
}

struct IttageDriver
{
    Ittage it{"ITTAGE", smallIttage()};
    HistoryRegister gh{64};

    /** Predict + update an indirect jump at slot 0 of @p pc. */
    Addr
    round(Addr pc, Addr actual_target, bool push_bit)
    {
        bpu::PredictContext ctx;
        ctx.pc = pc;
        ctx.validSlots = 4;
        ctx.ghist = &gh;
        bpu::PredictionBundle b;
        b.width = 4;
        // The BTB marked slot 0 as an indirect jump with its last
        // seen target.
        b.slots[0].valid = true;
        b.slots[0].taken = true;
        b.slots[0].type = bpu::CfiType::Jalr;
        b.slots[0].targetValid = true;
        b.slots[0].target = 0x1111'0000;
        bpu::Metadata meta{};
        it.predict(ctx, b, meta);
        const Addr predicted = b.slots[0].target;

        bpu::ResolveEvent ev;
        ev.pc = pc;
        ev.ghist = &gh;
        ev.meta = &meta;
        ev.cfiValid = true;
        ev.cfiIdx = 0;
        ev.cfiType = bpu::CfiType::Jalr;
        ev.cfiTaken = true;
        ev.target = actual_target;
        ev.mispredicted = predicted != actual_target;
        ev.predicted = &b;
        it.update(ev);
        gh.push(push_bit);
        return predicted;
    }
};

TEST(Ittage, LearnsHistoryCorrelatedTargets)
{
    // Target selected by the last history bit: ITTAGE must learn
    // both contexts; the BTB alone (one target) cannot.
    IttageDriver drv;
    int correct = 0, total = 0;
    std::uint64_t lfsr = 0xACE1;
    for (int i = 0; i < 6000; ++i) {
        lfsr = (lfsr >> 1) ^ (-(lfsr & 1) & 0xB400);
        const bool ctxBit = drv.gh.bit(0);
        const Addr target = ctxBit ? 0x2000'0000 : 0x3000'0000;
        const Addr pred = drv.round(0x6100, target, lfsr & 1);
        if (i > 3000) {
            ++total;
            correct += pred == target;
        }
    }
    EXPECT_GT(static_cast<double>(correct) / total, 0.9);
}

TEST(Ittage, DoesNotTouchReturns)
{
    Ittage it("ITTAGE", smallIttage());
    HistoryRegister gh(64);
    bpu::PredictContext ctx;
    ctx.pc = 0x6200;
    ctx.validSlots = 4;
    ctx.ghist = &gh;
    bpu::PredictionBundle b;
    b.width = 4;
    b.slots[0].type = bpu::CfiType::Jalr;
    b.slots[0].isRet = true;
    b.slots[0].targetValid = true;
    b.slots[0].target = 0xAAAA;
    bpu::Metadata meta{};
    it.predict(ctx, b, meta);
    EXPECT_EQ(b.slots[0].target, 0xAAAAu)
        << "returns belong to the RAS";
}

TEST(Ittage, MonomorphicTargetStable)
{
    IttageDriver drv;
    for (int i = 0; i < 500; ++i)
        drv.round(0x6300, 0x4000'0000, i % 3 == 0);
    const Addr pred = drv.round(0x6300, 0x4000'0000, true);
    // With a confident entry (or pass-through of the BTB target on a
    // miss), the prediction settles.
    EXPECT_TRUE(pred == 0x4000'0000 || pred == 0x1111'0000u);
}

TEST(Ittage, StorageAccounting)
{
    Ittage it("ITTAGE", smallIttage());
    EXPECT_GT(it.storageBits(), 0u);
    EXPECT_LT(it.storageBits(), 64ull * 1024 * 8);
}

// ---------------------------------------------------------------------
// YAGS
// ---------------------------------------------------------------------

YagsParams
smallYags()
{
    YagsParams p;
    p.choiceSets = 512;
    p.cacheSets = 128;
    p.latency = 2;
    p.fetchWidth = 4;
    return p;
}

TEST(Yags, LearnsBias)
{
    Yags y("YAGS", smallYags());
    test::SingleBranchDriver drv(y, 0x7000, 0);
    std::vector<bool> always(2000, true);
    EXPECT_GT(drv.accuracy(always), 0.99);
}

TEST(Yags, ExceptionCacheCatchesHistoryDeviations)
{
    // Mostly-taken branch that is not-taken in one history context:
    // the not-taken exception cache must learn it.
    Yags y("YAGS", smallYags());
    test::SingleBranchDriver drv(y, 0x7000, 1);
    const auto outs = test::loopOutcomes(6, 1200);
    EXPECT_GT(drv.accuracy(outs), 0.93);
}

TEST(Yags, LearnsPeriodicPattern)
{
    Yags y("YAGS", smallYags());
    test::SingleBranchDriver drv(y, 0x7000, 0);
    const auto outs = test::periodicOutcomes(0b011, 3, 6000);
    EXPECT_GT(drv.accuracy(outs), 0.93);
}

TEST(Yags, SlotsDoNotAliasInChoicePht)
{
    Yags y("YAGS", smallYags());
    test::SingleBranchDriver d0(y, 0x7000, 0);
    test::SingleBranchDriver d3(y, 0x7000, 3);
    int c0 = 0, c3 = 0;
    for (int i = 0; i < 1000; ++i) {
        const bool p0 = d0.round(true);
        const bool p3 = d3.round(false);
        if (i > 500) {
            c0 += p0 == true;
            c3 += p3 == false;
        }
    }
    EXPECT_GT(c0 / 499.0, 0.98);
    EXPECT_GT(c3 / 499.0, 0.98);
}

TEST(Yags, StorageSmallerThanEquivalentTournament)
{
    // The YAGS pitch: exception caches replace a second full-size
    // untagged table.
    Yags y("YAGS", smallYags());
    const std::uint64_t tournamentLike = 3ull * 512 * 2; // 3 tables
    EXPECT_LT(y.storageBits(), 3 * tournamentLike);
}

} // namespace
} // namespace cobra::comps
