/**
 * @file
 * Focused frontend/backend behaviour tests: re-steer bubble costs,
 * fetch-buffer/history-file backpressure, ICache stalls, RAS
 * behaviour through deep call chains, SFB shadow predication timing,
 * and redirect bookkeeping — driven through small handcrafted
 * programs with the full simulator.
 */

#include <gtest/gtest.h>

#include "program/builder.hpp"
#include "program/workload.hpp"
#include "sim/presets.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace cobra::core {
namespace {

using prog::BranchBehavior;
using prog::OpClass;

prog::CodeMix
aluMix()
{
    prog::CodeMix m;
    m.fLoad = m.fStore = m.fMul = m.fDiv = m.fFp = 0;
    m.depChain = 0.0;
    return m;
}

sim::SimConfig
cfg(std::uint64_t insts = 30'000, std::uint64_t warm = 10'000)
{
    sim::SimConfig c = sim::makeConfig(sim::Design::TageL);
    c.maxInsts = insts;
    c.warmupInsts = warm;
    return c;
}

TEST(FrontendBehavior, TakenBranchCostDependsOnPredictorLatency)
{
    // A tight always-taken loop: with the uBTB (1-cycle) the taken
    // redirect is seamless; a 2-cycle-BTB-only design pays one bubble
    // per iteration; measure the gap.
    prog::ProgramBuilder bld(21);
    const Addr top = bld.here();
    bld.emitStraightLine(6, aluMix());
    bld.emitJump(top);
    prog::Program p = bld.takeProgram();
    p.setEntry(top);

    sim::Simulator withU(p, sim::buildTopology(sim::Design::TageL),
                         cfg());
    const double ipcWith = withU.run().ipc();
    sim::Simulator withoutU(p, sim::buildTopology(sim::Design::B2),
                            cfg());
    const double ipcWithout = withoutU.run().ipc();
    EXPECT_GT(ipcWith, ipcWithout * 1.05)
        << "1-cycle next-line prediction must beat 2-cycle BTB "
           "redirects on taken-branch-dense code";
}

TEST(FrontendBehavior, ResteersAreCounted)
{
    // Taken branches predicted by the 2-cycle BTB generate stage-2
    // re-steers (1 killed packet each).
    prog::ProgramBuilder bld(22);
    const Addr top = bld.here();
    bld.emitStraightLine(10, aluMix());
    bld.emitJump(top);
    prog::Program p = bld.takeProgram();
    p.setEntry(top);

    sim::Simulator s(p, sim::buildTopology(sim::Design::B2), cfg());
    s.run();
    EXPECT_GT(s.frontend().stats().get("resteers"), 500u);
    EXPECT_GT(s.frontend().stats().get("packets_killed"), 500u);
}

TEST(FrontendBehavior, LargeCodeFootprintStallsOnICache)
{
    // A code footprint far beyond L1I forces instruction-fetch
    // stalls; the next-line prefetcher keeps them bounded.
    prog::WorkloadProfile prof = prog::WorkloadLibrary::profile("gcc");
    prof.numFunctions = 160;
    prof.blocksPerFunction = 10;
    const prog::Program p = prog::buildWorkload(prof);
    ASSERT_GT(p.size() * 4, 64u * 1024) << "need > L1I footprint";

    sim::Simulator s(p, sim::buildTopology(sim::Design::TageL), cfg());
    s.run();
    EXPECT_GT(s.frontend().stats().get("icache_stall_cycles"), 100u);
    EXPECT_GT(s.caches().l1i().misses(), 100u);
}

TEST(FrontendBehavior, DeepCallChainsKeepRasAccurate)
{
    // Nested call structure within RAS depth: returns must be pre-
    // dicted by the RAS, so jalr mispredicts stay near zero.
    const prog::Program p = prog::buildWorkload(
        prog::WorkloadLibrary::profile("xalancbmk"));
    sim::Simulator s(p, sim::buildTopology(sim::Design::TageL),
                     cfg(60'000, 20'000));
    const auto r = s.run();
    // Returns dominate the jalr population here; most must hit.
    EXPECT_LT(static_cast<double>(r.jalrMispredicts) / r.cfis, 0.05);
}

TEST(FrontendBehavior, HistoryFileBackpressureThrottlesFetch)
{
    const prog::Program p = prog::buildWorkload(
        prog::WorkloadLibrary::profile("x264"));
    sim::SimConfig small = cfg();
    small.bpu.historyFileEntries = 8;
    sim::Simulator s(p, sim::buildTopology(sim::Design::TageL), small);
    const auto r = s.run();
    EXPECT_GT(s.frontend().stats().get("stall_histfile"), 1000u);
    sim::Simulator big(p, sim::buildTopology(sim::Design::TageL),
                       cfg());
    EXPECT_GT(big.run().ipc(), r.ipc() * 1.2);
}

TEST(BackendBehavior, LongLatencyDivideSerializes)
{
    // A divide-fed dependence chain should drag IPC near 1/12.
    prog::ProgramBuilder bld(23);
    const Addr top = bld.here();
    for (int i = 0; i < 50; ++i) {
        prog::StaticInst si;
        si.op = OpClass::IntDiv;
        si.dst = 7;
        si.src1 = 7;
        bld.emit(si);
    }
    bld.emitJump(top);
    prog::Program p = bld.takeProgram();
    p.setEntry(top);
    sim::Simulator s(p, sim::buildTopology(sim::Design::TageL),
                     cfg(6'000, 2'000));
    const auto r = s.run();
    EXPECT_LT(r.ipc(), 0.15);
}

TEST(BackendBehavior, MemoryBoundCodeLimitedByDcacheMisses)
{
    prog::WorkloadProfile prof = prog::WorkloadLibrary::profile("mcf");
    const prog::Program p = prog::buildWorkload(prof);
    sim::Simulator s(p, sim::buildTopology(sim::Design::TageL), cfg());
    const auto r = s.run();
    EXPECT_LT(r.ipc(), 0.6);
    EXPECT_GT(s.caches().l1d().misses(), 1000u);
}

TEST(BackendBehavior, SfbShadowStillCommits)
{
    // With SFB on, taken hammocks do not flush; their shadow
    // instructions commit as predicated ops — committed instruction
    // counts must not shrink.
    const prog::Program p = prog::buildWorkload(
        prog::WorkloadLibrary::profile("coremark"));
    sim::SimConfig on = cfg();
    on.backend.sfbEnabled = true;
    sim::Simulator s(p, sim::buildTopology(sim::Design::TageL), on);
    const auto r = s.run();
    EXPECT_FALSE(r.deadlocked);
    EXPECT_GE(r.insts, on.maxInsts);
    EXPECT_GT(r.sfbConversions, 0u);
}

TEST(BackendBehavior, SfbReducesRedirects)
{
    const prog::Program p = prog::buildWorkload(
        prog::WorkloadLibrary::profile("coremark"));
    sim::Simulator off(p, sim::buildTopology(sim::Design::TageL),
                       cfg());
    off.run();
    const auto redirectsOff = off.frontend().stats().get("redirects");

    sim::SimConfig onCfg = cfg();
    onCfg.backend.sfbEnabled = true;
    sim::Simulator on(p, sim::buildTopology(sim::Design::TageL),
                      onCfg);
    on.run();
    const auto redirectsOn = on.frontend().stats().get("redirects");
    EXPECT_LT(redirectsOn, redirectsOff)
        << "predicated hammocks must stop flushing the pipeline";
}

TEST(BackendBehavior, WrongPathFetchObservable)
{
    // With a hard-to-predict branch, a measurable share of fetched
    // instructions never commit (wrong-path fetch + kills).
    BranchBehavior b;
    b.kind = BranchBehavior::Kind::Biased;
    b.pTaken = 0.5;
    b.seed = 3;
    const prog::Program p = test::singleBranchProgram(b);
    sim::Simulator s(p, sim::buildTopology(sim::Design::B2), cfg());
    const auto r = s.run();
    const auto fetched = s.frontend().stats().get("insts_fetched");
    EXPECT_GT(fetched, r.insts * 11 / 10)
        << "speculation must overfetch on mispredicting code";
}

TEST(BackendBehavior, RedirectRestoresOraclePath)
{
    // After every mispredict the frontend must resync to the oracle;
    // the run completes the full budget with nonzero resyncs killed.
    BranchBehavior b;
    b.kind = BranchBehavior::Kind::Periodic;
    b.pattern = 0b0110;
    b.patternLen = 4;
    const prog::Program p = test::singleBranchProgram(b);
    sim::Simulator s(p, sim::buildTopology(sim::Design::B2), cfg());
    const auto r = s.run();
    EXPECT_FALSE(r.deadlocked);
    EXPECT_TRUE(s.frontend().onOraclePath());
}

} // namespace
} // namespace cobra::core
