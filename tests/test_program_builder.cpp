#include <gtest/gtest.h>

#include "program/builder.hpp"

namespace cobra::prog {
namespace {

CodeMix
pureAluMix()
{
    CodeMix m;
    m.fLoad = m.fStore = m.fMul = m.fDiv = m.fFp = 0.0;
    return m;
}

TEST(Program, AddressingAndContains)
{
    Program p(0x1000);
    StaticInst si;
    si.op = OpClass::Nop;
    const Addr a0 = p.append(si);
    const Addr a1 = p.append(si);
    EXPECT_EQ(a0, 0x1000u);
    EXPECT_EQ(a1, 0x1004u);
    EXPECT_TRUE(p.contains(0x1000));
    EXPECT_TRUE(p.contains(0x1004));
    EXPECT_FALSE(p.contains(0x1008));
    EXPECT_FALSE(p.contains(0x1002)); // misaligned
    EXPECT_EQ(p.indexOf(0x1004), 1u);
}

TEST(Program, ClampPcWrapsWrongPathFetch)
{
    Program p(0x1000);
    StaticInst si;
    for (int i = 0; i < 8; ++i)
        p.append(si);
    EXPECT_EQ(p.clampPc(0x1010), 0x1010u);
    const Addr wild = p.clampPc(0xdeadbeef);
    EXPECT_TRUE(p.contains(wild));
}

TEST(ProgramBuilder, StraightLineMix)
{
    ProgramBuilder bld(1);
    CodeMix m = pureAluMix();
    m.fLoad = 1.0; // All loads.
    m.memStreams = {0};
    bld.program().addMemStream(MemStream{});
    bld.emitStraightLine(50, m);
    const Program& p = bld.program();
    EXPECT_EQ(p.size(), 50u);
    EXPECT_EQ(p.countOpClass(OpClass::Load), 50u);
    // Loads carry a stream id.
    EXPECT_EQ(p.at(p.base()).memStreamId, 0u);
}

TEST(ProgramBuilder, LoopBackwardBranch)
{
    ProgramBuilder bld(2);
    bld.emitLoop(10, 0, 6, pureAluMix());
    const Program& p = bld.program();
    // Last instruction is the backward conditional branch.
    const Addr brPc = p.pcOf(p.size() - 1);
    const StaticInst& br = p.at(brPc);
    EXPECT_EQ(br.op, OpClass::CondBranch);
    EXPECT_EQ(br.target, p.base());
    EXPECT_LT(br.target, brPc);
    EXPECT_EQ(p.branchBehavior(br.behaviorId).kind,
              BranchBehavior::Kind::Loop);
    EXPECT_EQ(p.branchBehavior(br.behaviorId).trip, 10u);
}

TEST(ProgramBuilder, HammockSkipsShadow)
{
    ProgramBuilder bld(3);
    BranchBehavior b;
    b.pTaken = 0.5;
    bld.emitHammock(b, 4, pureAluMix(), 8);
    const Program& p = bld.program();
    const StaticInst& br = p.at(p.base());
    EXPECT_EQ(br.op, OpClass::CondBranch);
    // Forward target exactly past the 4-instruction shadow.
    EXPECT_EQ(br.target, p.base() + 5 * kInstBytes);
    EXPECT_TRUE(br.sfbEligible);
}

TEST(ProgramBuilder, LongHammockNotSfbEligible)
{
    ProgramBuilder bld(4);
    BranchBehavior b;
    bld.emitHammock(b, 20, pureAluMix(), 8);
    EXPECT_FALSE(bld.program().at(bld.program().base()).sfbEligible);
}

TEST(ProgramBuilder, IfElseJoins)
{
    ProgramBuilder bld(5);
    BranchBehavior b;
    bld.emitIfElse(b, 3, 2, pureAluMix());
    const Program& p = bld.program();
    // Layout: br, then(3), jump, else(2); br targets else, jump
    // targets join.
    const StaticInst& br = p.at(p.base());
    ASSERT_EQ(br.op, OpClass::CondBranch);
    const Addr elseAddr = p.base() + (1 + 3 + 1) * kInstBytes;
    EXPECT_EQ(br.target, elseAddr);
    const StaticInst& jmp = p.at(p.base() + 4 * kInstBytes);
    ASSERT_EQ(jmp.op, OpClass::Jump);
    EXPECT_EQ(jmp.target, elseAddr + 2 * kInstBytes);
}

TEST(ProgramBuilder, SwitchTargetsCases)
{
    ProgramBuilder bld(6);
    IndirectBehavior proto;
    proto.kind = IndirectBehavior::Kind::RoundRobin;
    bld.emitSwitch(proto, 3, 2, pureAluMix());
    const Program& p = bld.program();
    const StaticInst& jr = p.at(p.base());
    ASSERT_EQ(jr.op, OpClass::IndirectJump);
    const IndirectBehavior& b = p.indirectBehavior(jr.behaviorId);
    ASSERT_EQ(b.targets.size(), 3u);
    // Every case target lands within the program and after the jump.
    for (Addr t : b.targets) {
        EXPECT_TRUE(p.contains(t));
        EXPECT_GT(t, p.base());
    }
}

TEST(ProgramBuilder, CallAndReturn)
{
    ProgramBuilder bld(7);
    const Addr callee = bld.emitNop();
    bld.emitReturn();
    const Addr site = bld.emitCall(callee);
    const Program& p = bld.program();
    EXPECT_EQ(p.at(site).op, OpClass::Call);
    EXPECT_EQ(p.at(site).target, callee);
}

TEST(ProgramBuilder, Describe)
{
    StaticInst si;
    si.op = OpClass::CondBranch;
    si.target = 0x1234;
    const std::string d = si.describe();
    EXPECT_NE(d.find("br"), std::string::npos);
    EXPECT_NE(d.find("1234"), std::string::npos);
}

} // namespace
} // namespace cobra::prog
