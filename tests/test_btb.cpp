#include <gtest/gtest.h>

#include "components/btb.hpp"

namespace cobra::comps {
namespace {

BtbParams
smallBtb()
{
    BtbParams p;
    p.sets = 16;
    p.ways = 2;
    p.latency = 2;
    p.fetchWidth = 4;
    return p;
}

bpu::ResolveEvent
takenCfi(Addr pc, unsigned slot, Addr target, bpu::CfiType type,
         const bpu::Metadata* meta)
{
    bpu::ResolveEvent ev;
    ev.pc = pc;
    ev.meta = meta;
    ev.cfiValid = true;
    ev.cfiIdx = slot;
    ev.cfiType = type;
    ev.cfiTaken = true;
    ev.target = target;
    if (type == bpu::CfiType::Br) {
        ev.brMask[slot] = true;
        ev.takenMask[slot] = true;
    }
    return ev;
}

TEST(Btb, MissPassesThrough)
{
    Btb btb("BTB", smallBtb());
    bpu::PredictContext ctx;
    ctx.pc = 0x8000;
    ctx.validSlots = 4;
    bpu::PredictionBundle in;
    in.width = 4;
    in.slots[1].valid = true;
    in.slots[1].taken = true;
    bpu::PredictionBundle out = in;
    bpu::Metadata meta{};
    btb.predict(ctx, out, meta);
    // Fig. 3: on a tag miss the incoming prediction flows unchanged.
    EXPECT_TRUE(out.slots[1].valid);
    EXPECT_TRUE(out.slots[1].taken);
    EXPECT_FALSE(out.slots[1].targetValid);
}

TEST(Btb, LearnsTargetAndAugmentsDirection)
{
    Btb btb("BTB", smallBtb());
    const Addr pc = 0x8000;
    // Predict (miss), then update with a taken branch at slot 2.
    bpu::PredictContext ctx;
    ctx.pc = pc;
    ctx.validSlots = 4;
    bpu::PredictionBundle b;
    b.width = 4;
    bpu::Metadata meta{};
    btb.predict(ctx, b, meta);
    btb.update(takenCfi(pc, 2, 0x9000, bpu::CfiType::Br, &meta));

    // Second query hits: the BTB augments the incoming direction with
    // the target (paper Fig. 3).
    bpu::PredictionBundle in;
    in.width = 4;
    in.slots[2].valid = true;
    in.slots[2].taken = true; // direction from a counter table
    bpu::Metadata meta2{};
    btb.predict(ctx, in, meta2);
    EXPECT_TRUE(in.slots[2].targetValid);
    EXPECT_EQ(in.slots[2].target, 0x9000u);
    EXPECT_EQ(in.slots[2].type, bpu::CfiType::Br);
}

TEST(Btb, UnconditionalJumpPredictsTaken)
{
    Btb btb("BTB", smallBtb());
    const Addr pc = 0x8000;
    bpu::PredictContext ctx;
    ctx.pc = pc;
    ctx.validSlots = 4;
    bpu::PredictionBundle b;
    b.width = 4;
    bpu::Metadata meta{};
    btb.predict(ctx, b, meta);
    auto ev = takenCfi(pc, 0, 0xa000, bpu::CfiType::Jal, &meta);
    ev.cfiIsCall = true;
    btb.update(ev);

    bpu::PredictionBundle in;
    in.width = 4;
    bpu::Metadata meta2{};
    btb.predict(ctx, in, meta2);
    EXPECT_TRUE(in.slots[0].valid);
    EXPECT_TRUE(in.slots[0].taken);
    EXPECT_TRUE(in.slots[0].isCall);
    EXPECT_EQ(in.slots[0].type, bpu::CfiType::Jal);
}

TEST(Btb, SetAssociativityHoldsTwoTagsPerSet)
{
    Btb btb("BTB", smallBtb());
    // Two PCs mapping to the same set (16 sets, packet stride 16B).
    const Addr a = 0x8000;
    const Addr b = a + 16 * 16 * 4; // same set, different tag
    for (Addr pc : {a, b}) {
        bpu::PredictContext ctx;
        ctx.pc = pc;
        ctx.validSlots = 4;
        bpu::PredictionBundle bun;
        bun.width = 4;
        bpu::Metadata meta{};
        btb.predict(ctx, bun, meta);
        btb.update(takenCfi(pc, 1, pc + 0x40, bpu::CfiType::Br, &meta));
    }
    // Both must still hit.
    for (Addr pc : {a, b}) {
        bpu::PredictContext ctx;
        ctx.pc = pc;
        ctx.validSlots = 4;
        bpu::PredictionBundle bun;
        bun.width = 4;
        bpu::Metadata meta{};
        btb.predict(ctx, bun, meta);
        EXPECT_TRUE(bun.slots[1].targetValid) << std::hex << pc;
        EXPECT_EQ(bun.slots[1].target, pc + 0x40) << std::hex << pc;
    }
}

TEST(Btb, LruEvictsOldest)
{
    Btb btb("BTB", smallBtb());
    // Three tags in a 2-way set: the first learned gets evicted.
    const Addr stride = 16 * 16 * 4;
    const Addr pcs[3] = {0x8000, 0x8000 + stride, 0x8000 + 2 * stride};
    for (Addr pc : pcs) {
        bpu::PredictContext ctx;
        ctx.pc = pc;
        ctx.validSlots = 4;
        bpu::PredictionBundle bun;
        bun.width = 4;
        bpu::Metadata meta{};
        btb.predict(ctx, bun, meta);
        btb.update(takenCfi(pc, 0, pc + 0x40, bpu::CfiType::Br, &meta));
    }
    bpu::PredictContext ctx;
    ctx.pc = pcs[0];
    ctx.validSlots = 4;
    bpu::PredictionBundle bun;
    bun.width = 4;
    bpu::Metadata meta{};
    btb.predict(ctx, bun, meta);
    EXPECT_FALSE(bun.slots[0].targetValid);
}

TEST(Btb, StorageScalesWithGeometry)
{
    BtbParams p = smallBtb();
    Btb small("BTB", p);
    p.sets *= 2;
    Btb big("BTB", p);
    EXPECT_EQ(big.storageBits(), 2 * small.storageBits());
}

// ---------------------------------------------------------------------

TEST(MicroBtb, OneCyclePcOnly)
{
    MicroBtbParams p;
    p.entries = 4;
    p.fetchWidth = 4;
    MicroBtb u("uBTB", p);
    EXPECT_EQ(u.latency(), 1u);
}

TEST(MicroBtb, LearnsTakenCfiAndPredictsComplete)
{
    MicroBtbParams p;
    p.entries = 4;
    p.fetchWidth = 4;
    MicroBtb u("uBTB", p);
    const Addr pc = 0xc000;

    bpu::PredictContext ctx;
    ctx.pc = pc;
    ctx.validSlots = 4;
    bpu::PredictionBundle b;
    b.width = 4;
    bpu::Metadata meta{};
    u.predict(ctx, b, meta);
    EXPECT_FALSE(b.slots[2].valid);
    u.update(takenCfi(pc, 2, 0xd000, bpu::CfiType::Br, &meta));

    bpu::Metadata meta2{};
    bpu::PredictionBundle b2;
    b2.width = 4;
    u.predict(ctx, b2, meta2);
    EXPECT_TRUE(b2.slots[2].valid);
    EXPECT_TRUE(b2.slots[2].taken);
    EXPECT_TRUE(b2.slots[2].targetValid);
    EXPECT_EQ(b2.slots[2].target, 0xd000u);
}

TEST(MicroBtb, HysteresisDecaysOnNotTaken)
{
    MicroBtbParams p;
    p.entries = 4;
    p.ctrBits = 2;
    p.fetchWidth = 4;
    MicroBtb u("uBTB", p);
    const Addr pc = 0xc000;
    bpu::PredictContext ctx;
    ctx.pc = pc;
    ctx.validSlots = 4;
    bpu::PredictionBundle b;
    b.width = 4;
    bpu::Metadata meta{};
    u.predict(ctx, b, meta);
    u.update(takenCfi(pc, 0, 0xd000, bpu::CfiType::Br, &meta));

    // Resolve the packet repeatedly with no taken CFI: counter decays
    // until the uBTB stops predicting.
    for (int i = 0; i < 6; ++i) {
        bpu::ResolveEvent ev;
        ev.pc = pc;
        ev.meta = &meta;
        ev.brMask[0] = true;
        ev.takenMask[0] = false;
        u.update(ev);
    }
    bpu::PredictionBundle b2;
    b2.width = 4;
    bpu::Metadata meta2{};
    u.predict(ctx, b2, meta2);
    EXPECT_FALSE(b2.slots[0].valid);
}

TEST(MicroBtb, CapacityEvictsLru)
{
    MicroBtbParams p;
    p.entries = 2;
    p.fetchWidth = 4;
    MicroBtb u("uBTB", p);
    for (Addr pc : {0x1000u, 0x2000u, 0x3000u}) {
        bpu::PredictContext ctx;
        ctx.pc = pc;
        ctx.validSlots = 4;
        bpu::PredictionBundle b;
        b.width = 4;
        bpu::Metadata meta{};
        u.predict(ctx, b, meta);
        u.update(takenCfi(pc, 0, pc + 0x40, bpu::CfiType::Jal, &meta));
    }
    bpu::PredictContext ctx;
    ctx.pc = 0x1000;
    ctx.validSlots = 4;
    bpu::PredictionBundle b;
    b.width = 4;
    bpu::Metadata meta{};
    u.predict(ctx, b, meta);
    EXPECT_FALSE(b.slots[0].valid);
}

} // namespace
} // namespace cobra::comps
