#include <gtest/gtest.h>

#include "sim/presets.hpp"

namespace cobra::sim {
namespace {

TEST(Presets, TopologiesValidate)
{
    for (Design d : {Design::Tourney, Design::B2, Design::TageL,
                     Design::RefBig}) {
        bpu::Topology t = buildTopology(d);
        EXPECT_NO_THROW(t.validate()) << designName(d);
        EXPECT_EQ(t.maxLatency(), 3u) << designName(d);
    }
}

TEST(Presets, PaperNotationMatchesTopology)
{
    EXPECT_EQ(buildTopology(Design::B2).describe(),
              "GTAG3 > BTB2 > BIM2");
    EXPECT_EQ(buildTopology(Design::TageL).describe(),
              "LOOP3 > TAGE3 > BTB2 > BIM2 > uBTB1");
    EXPECT_EQ(buildTopology(Design::Tourney).describe(),
              "TOURNEY3 > [(GBIM2 > BTB2), LBIM2]");
}

TEST(Presets, TableIStorageBallpark)
{
    // Table I storage (direction/history state, the big BTB costed
    // separately): Tourney 6.8 KB, B2 6.5 KB, TAGE-L 28 KB. The
    // model's accounting must land in the same band (+-50%).
    struct Expect
    {
        Design d;
        double kib;
    };
    for (const auto& [d, kib] : {Expect{Design::Tourney, 6.8},
                                 Expect{Design::B2, 6.5},
                                 Expect{Design::TageL, 28.0}}) {
        bpu::Topology t = buildTopology(d);
        std::uint64_t bits = 0;
        for (auto* c : t.componentList()) {
            if (c->name().find("BTB") == std::string::npos)
                bits += c->storageBits();
        }
        // Add the design's history provider state.
        const SimConfig cfg = makeConfig(d);
        bits += cfg.bpu.ghistBits;
        if (d == Design::Tourney)
            bits += cfg.bpu.lhistSets * cfg.bpu.lhistBits;
        const double gotKib = bits / 8.0 / 1024.0;
        EXPECT_GT(gotKib, kib * 0.5) << designName(d);
        EXPECT_LT(gotKib, kib * 1.5) << designName(d);
    }
}

TEST(Presets, ConfigsFollowTableII)
{
    const SimConfig cfg = makeConfig(Design::TageL);
    EXPECT_EQ(cfg.frontend.fetchWidth, 4u); // 16-byte fetch
    EXPECT_EQ(cfg.backend.coreWidth, 4u);
    EXPECT_EQ(cfg.backend.robEntries, 128u);
    EXPECT_EQ(cfg.backend.ldqEntries, 32u);
    EXPECT_EQ(cfg.backend.stqEntries, 32u);
    EXPECT_EQ(cfg.backend.aluPorts + cfg.backend.memPorts +
                  cfg.backend.fpPorts,
              8u); // 8 pipelines
    EXPECT_EQ(cfg.caches.l1i.sizeBytes, 32u * 1024);
    EXPECT_EQ(cfg.caches.l2.sizeBytes, 512u * 1024);
    EXPECT_EQ(cfg.caches.l3.sizeBytes, 4u * 1024 * 1024);
}

TEST(Presets, DesignGhistWidthsMatchTableI)
{
    EXPECT_EQ(makeConfig(Design::Tourney).bpu.ghistBits, 32u);
    EXPECT_EQ(makeConfig(Design::B2).bpu.ghistBits, 16u);
    EXPECT_EQ(makeConfig(Design::TageL).bpu.ghistBits, 64u);
}

TEST(Presets, RefBigIsWiderCore)
{
    const SimConfig ref = makeConfig(Design::RefBig);
    const SimConfig base = makeConfig(Design::TageL);
    EXPECT_GT(ref.backend.coreWidth, base.backend.coreWidth);
    EXPECT_GT(ref.backend.robEntries, base.backend.robEntries);
}

TEST(Presets, DescriptionsNonEmpty)
{
    for (Design d : {Design::Tourney, Design::B2, Design::TageL,
                     Design::RefBig}) {
        EXPECT_FALSE(designDescription(d).empty());
        EXPECT_FALSE(designTopologyNotation(d).empty());
        EXPECT_STRNE(designName(d), "?");
    }
}

TEST(Presets, PaperDesignsAreThree)
{
    EXPECT_EQ(paperDesigns().size(), 3u);
}

} // namespace
} // namespace cobra::sim
