#include <gtest/gtest.h>

#include <algorithm>

#include "core/cache.hpp"

namespace cobra::core {
namespace {

CacheParams
tiny()
{
    CacheParams p;
    p.name = "tiny";
    p.sizeBytes = 1024;
    p.ways = 2;
    p.lineBytes = 64;
    p.hitLatency = 2;
    return p;
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(tiny());
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1030)); // same line
    EXPECT_EQ(c.misses(), 1u);
    EXPECT_EQ(c.accesses(), 3u);
}

TEST(Cache, ProbeDoesNotAllocate)
{
    Cache c(tiny());
    EXPECT_FALSE(c.probe(0x2000));
    EXPECT_FALSE(c.access(0x2000));
    EXPECT_TRUE(c.probe(0x2000));
}

TEST(Cache, LruEvictionWithinSet)
{
    Cache c(tiny()); // 8 sets x 2 ways
    const Addr setStride = 8 * 64;
    c.access(0x0);
    c.access(0x0 + setStride);     // second way
    c.access(0x0);                  // refresh first
    c.access(0x0 + 2 * setStride);  // evicts the second
    EXPECT_TRUE(c.probe(0x0));
    EXPECT_FALSE(c.probe(0x0 + setStride));
    EXPECT_TRUE(c.probe(0x0 + 2 * setStride));
}

TEST(Cache, CapacityHoldsWorkingSet)
{
    Cache c(tiny());
    for (Addr a = 0; a < 1024; a += 64)
        c.access(a);
    for (Addr a = 0; a < 1024; a += 64)
        EXPECT_TRUE(c.probe(a)) << a;
}

TEST(Cache, StorageBitsIncludeTags)
{
    Cache c(tiny());
    EXPECT_GT(c.storageBits(), 1024u * 8);
}

TEST(CacheHierarchy, LatenciesOrdered)
{
    HierarchyParams p;
    CacheHierarchy h(p);
    const Addr a = 0x5000'0000;
    const Cycle cold = h.loadAccess(a);   // misses everywhere
    const Cycle warm = h.loadAccess(a);   // L1 hit
    EXPECT_GT(cold, p.l2.hitLatency + p.l3.hitLatency);
    EXPECT_EQ(warm, p.l1d.hitLatency);
}

TEST(CacheHierarchy, L2CatchesL1Evictions)
{
    HierarchyParams p;
    p.l1d.sizeBytes = 1024;
    p.l1d.ways = 2;
    CacheHierarchy h(p);
    // Touch a 4 KB region (overflows L1, fits L2), then re-touch.
    for (Addr a = 0; a < 4096; a += 64)
        h.loadAccess(0x1000'0000 + a);
    const Cycle again = h.loadAccess(0x1000'0000);
    EXPECT_LE(again, p.l1d.hitLatency + p.l2.hitLatency);
    EXPECT_GT(again, p.l1d.hitLatency);
}

TEST(CacheHierarchy, SequentialFetchPrefetched)
{
    HierarchyParams p;
    CacheHierarchy h(p);
    // First fetch of a region misses; the next-line prefetcher hides
    // most of the subsequent sequential misses.
    const Cycle first = h.fetchAccess(0x2000'0000);
    Cycle worst = 0;
    for (Addr a = 64; a < 2048; a += 64)
        worst = std::max(worst, h.fetchAccess(0x2000'0000 + a));
    EXPECT_GT(first, p.l1i.hitLatency);
    EXPECT_LE(worst, p.l1i.hitLatency + p.l2.hitLatency);
}

TEST(CacheHierarchy, StoresAreCheap)
{
    CacheHierarchy h{HierarchyParams{}};
    EXPECT_LE(h.storeAccess(0x3000'0000), 2u);
}

} // namespace
} // namespace cobra::core
