#include <gtest/gtest.h>

#include "core/ras.hpp"

namespace cobra::core {
namespace {

TEST(Ras, PushPop)
{
    ReturnAddressStack ras(8);
    ras.push(0x100);
    ras.push(0x200);
    EXPECT_EQ(ras.top(), 0x200u);
    ras.pop();
    EXPECT_EQ(ras.top(), 0x100u);
}

TEST(Ras, PointerSnapshotRestore)
{
    ReturnAddressStack ras(8);
    ras.push(0x100);
    const std::uint32_t snap = ras.pointer();
    ras.push(0x200);
    ras.push(0x300);
    ras.restore(snap);
    EXPECT_EQ(ras.top(), 0x100u);
}

TEST(Ras, WrapsAround)
{
    ReturnAddressStack ras(4);
    for (Addr a = 0; a < 6; ++a)
        ras.push(0x1000 + a * 0x10);
    // Deepest 4 entries survive; top is the most recent.
    EXPECT_EQ(ras.top(), 0x1050u);
    ras.pop();
    EXPECT_EQ(ras.top(), 0x1040u);
}

TEST(Ras, UnderflowWrapsGracefully)
{
    ReturnAddressStack ras(4);
    ras.push(0xabc);
    ras.pop();
    EXPECT_NO_FATAL_FAILURE(ras.pop());
    EXPECT_NO_FATAL_FAILURE(ras.top());
}

TEST(Ras, Storage)
{
    ReturnAddressStack ras(16);
    EXPECT_EQ(ras.storageBits(), 16u * 48);
    EXPECT_GT(ras.physicalCost().flopBits, 0u);
}

} // namespace
} // namespace cobra::core
