/**
 * @file
 * SmallVector: the inline-storage vector the prediction hot path uses
 * to avoid per-event allocations. These tests pin down the spill
 * (inline -> heap), re-spill after clear(), copy/move semantics, and
 * equality — the operations MetadataBundle and the frontend exercise.
 */

#include <cstdint>
#include <utility>

#include <gtest/gtest.h>

#include "common/small_vector.hpp"

using cobra::SmallVector;

TEST(SmallVector, StaysInlineUpToCapacity)
{
    SmallVector<int, 4> v;
    EXPECT_TRUE(v.empty());
    for (int i = 0; i < 4; ++i)
        v.push_back(i);
    EXPECT_EQ(v.size(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(SmallVector, SpillsToHeapAndKeepsContents)
{
    SmallVector<int, 4> v;
    for (int i = 0; i < 100; ++i)
        v.push_back(i);
    ASSERT_EQ(v.size(), 100u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(SmallVector, ClearKeepsCapacityAndAllowsRespill)
{
    SmallVector<std::uint64_t, 2> v;
    for (std::uint64_t i = 0; i < 10; ++i)
        v.push_back(i);
    v.clear();
    EXPECT_TRUE(v.empty());
    // Refill through the inline region into the retained heap buffer.
    for (std::uint64_t i = 0; i < 10; ++i)
        v.push_back(i * 3);
    ASSERT_EQ(v.size(), 10u);
    for (std::uint64_t i = 0; i < 10; ++i)
        EXPECT_EQ(v[i], i * 3);
}

TEST(SmallVector, AssignAndResize)
{
    SmallVector<int, 4> v;
    v.assign(3, 7);
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0], 7);
    EXPECT_EQ(v[2], 7);

    v.assign(9, 2);
    ASSERT_EQ(v.size(), 9u);
    EXPECT_EQ(v[8], 2);

    v.resize(2);
    ASSERT_EQ(v.size(), 2u);
    EXPECT_EQ(v[1], 2);

    v.resize(6);
    ASSERT_EQ(v.size(), 6u);
    EXPECT_EQ(v[5], 0);
}

TEST(SmallVector, CopyPreservesBothStorageModes)
{
    SmallVector<int, 4> inlineV;
    inlineV.push_back(1);
    inlineV.push_back(2);
    SmallVector<int, 4> inlineCopy(inlineV);
    EXPECT_EQ(inlineCopy, inlineV);

    SmallVector<int, 4> heapV;
    for (int i = 0; i < 20; ++i)
        heapV.push_back(i);
    SmallVector<int, 4> heapCopy(heapV);
    EXPECT_EQ(heapCopy, heapV);

    heapCopy[3] = 99;
    EXPECT_NE(heapCopy, heapV); // deep copy, not aliased
}

TEST(SmallVector, CopyAssignOverwrites)
{
    SmallVector<int, 2> a;
    a.push_back(5);
    SmallVector<int, 2> b;
    for (int i = 0; i < 8; ++i)
        b.push_back(i);
    a = b;
    EXPECT_EQ(a, b);
    b = SmallVector<int, 2>{};
    EXPECT_TRUE(b.empty());
}

TEST(SmallVector, MoveStealsHeapBuffer)
{
    SmallVector<int, 2> src;
    for (int i = 0; i < 16; ++i)
        src.push_back(i);
    const int* heap = src.data();
    SmallVector<int, 2> dst(std::move(src));
    EXPECT_EQ(dst.size(), 16u);
    EXPECT_EQ(dst.data(), heap); // buffer moved, not copied
    EXPECT_TRUE(src.empty());    // NOLINT: inspecting moved-from state
}

TEST(SmallVector, IterationAndFrontBack)
{
    SmallVector<int, 4> v;
    for (int i = 1; i <= 3; ++i)
        v.push_back(i);
    int sum = 0;
    for (int x : v)
        sum += x;
    EXPECT_EQ(sum, 6);
    EXPECT_EQ(v.front(), 1);
    EXPECT_EQ(v.back(), 3);
}

TEST(SmallVector, EqualityComparesLengthAndContents)
{
    SmallVector<int, 4> a, b;
    a.push_back(1);
    b.push_back(1);
    EXPECT_EQ(a, b);
    b.push_back(2);
    EXPECT_NE(a, b);
    a.push_back(3);
    EXPECT_NE(a, b);
}

TEST(SmallVector, BoolSpecialisationWorks)
{
    // std::vector<bool> cannot back a data() pointer; SmallVector
    // must handle plain bools (the frontend's pushedBits).
    SmallVector<bool, 8> v;
    for (int i = 0; i < 12; ++i)
        v.push_back(i % 3 == 0);
    ASSERT_EQ(v.size(), 12u);
    for (int i = 0; i < 12; ++i)
        EXPECT_EQ(v[static_cast<std::size_t>(i)], i % 3 == 0);
}
