/**
 * @file
 * Composer edge cases: nested arbitration, wide (8-slot) fetch
 * bundles, deep chains, mixed-latency orderings, and metadata-slot
 * assignment across complex trees.
 */

#include <gtest/gtest.h>

#include "bpu/composer.hpp"
#include "components/bim.hpp"
#include "components/btb.hpp"
#include "components/tourney.hpp"
#include "test_util.hpp"

namespace cobra::bpu {
namespace {

using namespace cobra::comps;

HbimParams
bim(unsigned latency, unsigned width = 4, IndexMode mode = IndexMode::Pc)
{
    HbimParams p;
    p.sets = 64;
    p.latency = latency;
    p.fetchWidth = width;
    p.mode = mode;
    return p;
}

TourneyParams
tourney(unsigned latency, unsigned width = 4)
{
    TourneyParams p;
    p.sets = 64;
    p.latency = latency;
    p.fetchWidth = width;
    return p;
}

QueryState
query(ComposedPredictor& cp, Addr pc = 0x1000)
{
    QueryState q;
    q.reset(pc, cp.width(), static_cast<unsigned>(cp.components().size()),
            cp.width());
    HistoryRegister gh(64);
    q.captureHistory(gh, 0);
    return q;
}

TEST(ComposerEdge, NestedArbInsideArbChild)
{
    // ARB3 > [ (ARB3a > [A2, B2]) ... ] is rejected (equal latency is
    // allowed; the inner arb feeding the outer one must not respond
    // later than the outer).
    Topology topo;
    auto* outer = topo.make<Tourney>("OUTER", tourney(3));
    auto* inner = topo.make<Tourney>("INNER", tourney(3));
    auto* a = topo.make<Hbim>("A", bim(2));
    auto* b = topo.make<Hbim>("B", bim(2));
    auto* c = topo.make<Hbim>("C", bim(2));
    auto innerNode = topo.arb(inner, {topo.leaf(a), topo.leaf(b)});
    topo.setRoot(topo.arb(outer, {innerNode, topo.leaf(c)}));
    EXPECT_NO_THROW(topo.validate());
    ComposedPredictor cp(std::move(topo), 4);
    QueryState q = query(cp);
    for (unsigned d = 1; d <= 3; ++d)
        EXPECT_NO_FATAL_FAILURE(cp.evaluateStage(q, d));
    // All five components got their metadata slots.
    EXPECT_EQ(q.metadata().size(), 5u);
}

TEST(ComposerEdge, EightWideBundles)
{
    Topology topo;
    auto* a = topo.make<Hbim>("A", bim(2, 8));
    topo.setRoot(topo.leaf(a));
    ComposedPredictor cp(std::move(topo), 8);
    QueryState q = query(cp);
    cp.evaluateStage(q, 1);
    const PredictionBundle bnd = cp.evaluateStage(q, 2);
    EXPECT_EQ(bnd.width, 8u);
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_TRUE(bnd.slots[i].valid) << i;
}

TEST(ComposerEdge, NarrowComponentInWidePipelineRejected)
{
    Topology topo;
    auto* narrow = topo.make<Hbim>("N", bim(2, 4));
    topo.setRoot(topo.leaf(narrow));
    EXPECT_THROW(ComposedPredictor(std::move(topo), 8),
                 std::logic_error);
}

TEST(ComposerEdge, DeepChainEvaluates)
{
    Topology topo;
    std::vector<PredictorComponent*> comps;
    for (int i = 0; i < 6; ++i) {
        comps.push_back(topo.make<Hbim>("C" + std::to_string(i),
                                        bim(i % 2 ? 2 : 3)));
    }
    topo.setRoot(topo.chainOf(comps));
    ComposedPredictor cp(std::move(topo), 4);
    QueryState q = query(cp);
    for (unsigned d = 1; d <= 3; ++d)
        EXPECT_NO_FATAL_FAILURE(cp.evaluateStage(q, d));
    EXPECT_EQ(cp.components().size(), 6u);
    EXPECT_EQ(cp.totalMetaBits(), 6u * 8);
}

TEST(ComposerEdge, SlowComponentBelowFastOne)
{
    // FAST2 > SLOW3: the slow component's stage-3 output becomes the
    // fast one's pass-through *input*; where the fast one provided at
    // stage 2, its value stays final.
    Topology topo;
    auto* fast = topo.make<Hbim>("FAST", bim(2));
    auto* slow = topo.make<Hbim>("SLOW", bim(3));
    topo.setRoot(topo.chainOf({fast, slow}));
    ComposedPredictor cp(std::move(topo), 4);
    QueryState q = query(cp);
    cp.evaluateStage(q, 1);
    const PredictionBundle s2 = cp.evaluateStage(q, 2);
    const PredictionBundle s3 = cp.evaluateStage(q, 3);
    // The fast HBIM provides direction for all slots at stage 2; the
    // slow one cannot override it at stage 3 (lower priority).
    for (unsigned i = 0; i < 4; ++i) {
        EXPECT_EQ(s2.slots[i].taken, s3.slots[i].taken) << i;
        EXPECT_TRUE(s3.slots[i].valid);
    }
}

TEST(ComposerEdge, ValidSlotsLimitRespected)
{
    Topology topo;
    auto* a = topo.make<Hbim>("A", bim(2));
    topo.setRoot(topo.leaf(a));
    ComposedPredictor cp(std::move(topo), 4);
    QueryState q;
    q.reset(0x1000, /*valid_slots=*/2, 1, 4);
    HistoryRegister gh(64);
    q.captureHistory(gh, 0);
    cp.evaluateStage(q, 1);
    const PredictionBundle b = cp.evaluateStage(q, 2);
    EXPECT_TRUE(b.slots[0].valid);
    EXPECT_TRUE(b.slots[1].valid);
    EXPECT_FALSE(b.slots[2].valid);
    EXPECT_FALSE(b.slots[3].valid);
}

TEST(ComposerEdge, BundleHelpers)
{
    PredictionBundle b;
    b.width = 4;
    EXPECT_EQ(b.firstTakenSlot(), 4u);
    EXPECT_FALSE(b.anyTaken());
    b.slots[2].valid = true;
    b.slots[2].taken = true;
    EXPECT_EQ(b.firstTakenSlot(), 2u);
    EXPECT_TRUE(b.anyTaken());
    b.clear();
    EXPECT_FALSE(b.anyTaken());
}

TEST(ComposerEdge, DiffAndPatchRoundTrip)
{
    PredictionSlot before;
    PredictionSlot after = before;
    after.valid = true;
    after.taken = true;
    after.targetValid = true;
    after.target = 0x42;
    const std::uint8_t mask = diffSlots(before, after);
    EXPECT_TRUE(mask & kProvideDir);
    EXPECT_TRUE(mask & kProvideTarget);
    EXPECT_FALSE(mask & kProvideType);

    PredictionSlot replay;
    applySlotPatch(replay, after, mask);
    EXPECT_TRUE(replay.valid);
    EXPECT_TRUE(replay.taken);
    EXPECT_EQ(replay.target, 0x42u);
}

} // namespace
} // namespace cobra::bpu
