#include <gtest/gtest.h>

#include <map>

#include "exec/oracle.hpp"
#include "program/builder.hpp"
#include "program/workload.hpp"
#include "test_util.hpp"

namespace cobra::exec {
namespace {

using prog::BranchBehavior;
using prog::OpClass;

TEST(Oracle, LoopBehaviorTripCount)
{
    BranchBehavior b;
    b.kind = BranchBehavior::Kind::Loop;
    b.trip = 4;
    prog::ProgramBuilder bld(1);
    const Addr top = bld.here();
    bld.emitNop();
    bld.emitCondBranch(b, top);
    prog::Program p = bld.takeProgram();
    p.setEntry(top);

    Oracle o(p);
    // Expect the branch taken 3 times then not taken, repeating.
    int branchSeen = 0;
    std::vector<bool> outcomes;
    while (branchSeen < 12) {
        const DynInst& di = o.consume();
        if (di.si->op == OpClass::CondBranch) {
            outcomes.push_back(di.taken);
            ++branchSeen;
        }
        o.retireUpTo(di.seq);
    }
    for (int i = 0; i < 12; ++i)
        EXPECT_EQ(outcomes[i], (i + 1) % 4 != 0) << i;
}

TEST(Oracle, BiasedFrequency)
{
    BranchBehavior b;
    b.kind = BranchBehavior::Kind::Biased;
    b.pTaken = 0.8;
    b.seed = 99;
    prog::Program p = test::singleBranchProgram(b);
    Oracle o(p);
    int taken = 0, total = 0;
    while (total < 3000) {
        const DynInst& di = o.consume();
        if (di.isCondBranch()) {
            taken += di.taken;
            ++total;
        }
        o.retireUpTo(di.seq);
    }
    EXPECT_NEAR(taken / 3000.0, 0.8, 0.03);
}

TEST(Oracle, SequentialPcsAndRedirects)
{
    const prog::Program p = prog::buildWorkload(
        prog::WorkloadLibrary::profile("dhrystone"));
    Oracle o(p);
    Addr expected = p.entry();
    for (int i = 0; i < 20000; ++i) {
        const DynInst& di = o.consume();
        ASSERT_EQ(di.pc, expected) << "discontinuity at " << i;
        ASSERT_TRUE(p.contains(di.nextPc));
        expected = di.nextPc;
        o.retireUpTo(di.seq);
    }
}

TEST(Oracle, CallStackBalanced)
{
    const prog::Program p = prog::buildWorkload(
        prog::WorkloadLibrary::profile("xalancbmk"));
    Oracle o(p);
    std::vector<Addr> shadow;
    for (int i = 0; i < 50000; ++i) {
        const DynInst& di = o.consume();
        if (prog::isCall(di.si->op)) {
            shadow.push_back(di.pc + kInstBytes);
        } else if (di.si->op == OpClass::Return) {
            ASSERT_FALSE(shadow.empty());
            EXPECT_EQ(di.nextPc, shadow.back());
            shadow.pop_back();
        }
        o.retireUpTo(di.seq);
    }
}

TEST(Oracle, RewindReproducesStream)
{
    const prog::Program p = prog::buildWorkload(
        prog::WorkloadLibrary::profile("leela"));
    Oracle o(p);
    std::vector<DynInst> first;
    for (int i = 0; i < 100; ++i)
        first.push_back(o.consume());
    // Rewind to the 40th instruction and re-consume.
    o.rewindTo(first[40].seq);
    for (int i = 40; i < 100; ++i) {
        const DynInst& di = o.consume();
        ASSERT_EQ(di.seq, first[i].seq);
        ASSERT_EQ(di.pc, first[i].pc);
        ASSERT_EQ(di.taken, first[i].taken);
        ASSERT_EQ(di.nextPc, first[i].nextPc);
    }
}

TEST(Oracle, RetireDropsBufferButKeepsCursor)
{
    const prog::Program p = prog::buildWorkload(
        prog::WorkloadLibrary::profile("xz"));
    Oracle o(p);
    for (int i = 0; i < 50; ++i)
        o.consume();
    const SeqNum next = o.nextSeq();
    o.retireUpTo(next - 1);
    const DynInst& di = o.consume();
    EXPECT_EQ(di.seq, next);
}

TEST(Oracle, PeekDoesNotAdvance)
{
    const prog::Program p = prog::buildWorkload(
        prog::WorkloadLibrary::profile("x264"));
    Oracle o(p);
    const Addr pc0 = o.peek(0).pc;
    const Addr pc5 = o.peek(5).pc;
    EXPECT_EQ(o.peek(0).pc, pc0);
    EXPECT_EQ(o.peek(5).pc, pc5);
    EXPECT_EQ(o.consume().pc, pc0);
}

TEST(Oracle, WrongPathDeterministicAndClamped)
{
    const prog::Program p = prog::buildWorkload(
        prog::WorkloadLibrary::profile("gcc"));
    Oracle o(p);
    const DynInst a = o.wrongPath(0xdead0000, 7);
    const DynInst b = o.wrongPath(0xdead0000, 7);
    EXPECT_EQ(a.pc, b.pc);
    EXPECT_EQ(a.taken, b.taken);
    EXPECT_EQ(a.nextPc, b.nextPc);
    EXPECT_TRUE(a.wrongPath);
    EXPECT_TRUE(p.contains(a.pc));
    // Different salts may change outcomes but stay in the image.
    const DynInst c = o.wrongPath(0xdead0000, 8);
    EXPECT_TRUE(p.contains(c.nextPc) || c.nextPc == c.pc + kInstBytes);
}

TEST(Oracle, WrongPathDoesNotDisturbArchState)
{
    const prog::Program p = prog::buildWorkload(
        prog::WorkloadLibrary::profile("perlbench"));
    Oracle o1(p), o2(p);
    for (int i = 0; i < 100; ++i)
        o2.wrongPath(p.base() + 4 * (i % p.size()), i);
    for (int i = 0; i < 2000; ++i) {
        const DynInst& a = o1.consume();
        const DynInst& b = o2.consume();
        ASSERT_EQ(a.pc, b.pc);
        ASSERT_EQ(a.taken, b.taken);
    }
}

TEST(Oracle, RegisterDependencesPointBackward)
{
    const prog::Program p = prog::buildWorkload(
        prog::WorkloadLibrary::profile("exchange2"));
    Oracle o(p);
    for (int i = 0; i < 5000; ++i) {
        const DynInst& di = o.consume();
        if (di.dep1 != kInvalidSeq)
            EXPECT_LT(di.dep1, di.seq);
        if (di.dep2 != kInvalidSeq)
            EXPECT_LT(di.dep2, di.seq);
        o.retireUpTo(di.seq);
    }
}

TEST(Oracle, GlobalCorrelatedIsDeterministicFunctionOfHistory)
{
    BranchBehavior b;
    b.kind = BranchBehavior::Kind::GlobalCorrelated;
    b.depth = 6;
    b.noise = 0.0;
    b.seed = 5;
    prog::Program p = test::singleBranchProgram(b);
    Oracle o(p);
    // Collect the branch outcome stream; verify outcome = f(history).
    std::vector<bool> outs;
    while (outs.size() < 4000) {
        const DynInst& di = o.consume();
        if (di.isCondBranch())
            outs.push_back(di.taken);
        o.retireUpTo(di.seq);
    }
    std::map<std::uint64_t, bool> fn;
    std::uint64_t h = 0;
    for (bool out : outs) {
        const std::uint64_t key = h & maskBits(6);
        auto it = fn.find(key);
        if (it != fn.end())
            EXPECT_EQ(it->second, out);
        else
            fn[key] = out;
        h = (h << 1) | (out ? 1 : 0);
    }
}

} // namespace
} // namespace cobra::exec
