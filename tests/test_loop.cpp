#include <gtest/gtest.h>

#include "components/loop.hpp"
#include "test_util.hpp"

namespace cobra::comps {
namespace {

LoopParams
smallLoop()
{
    LoopParams p;
    p.entries = 32;
    p.latency = 3;
    p.fetchWidth = 4;
    return p;
}

/**
 * Drives the loop predictor through the full speculative protocol:
 * predict -> fire (speculative count advance) -> update at commit,
 * with mispredict on wrong predictions.
 */
class LoopDriver
{
  public:
    LoopDriver(LoopPredictor& lp, Addr pc, unsigned slot)
        : lp_(lp), pc_(pc), slot_(slot), gh_(64)
    {
    }

    bool
    round(bool actual, bool baseTaken = true)
    {
        bpu::PredictContext ctx;
        ctx.pc = pc_;
        ctx.validSlots = 4;
        ctx.ghist = &gh_;
        bpu::PredictionBundle b;
        b.width = 4;
        b.slots[slot_].valid = true;
        b.slots[slot_].taken = baseTaken;
        bpu::Metadata meta{};
        lp_.predict(ctx, b, meta);
        const bool pred = b.slots[slot_].valid && b.slots[slot_].taken;

        bpu::FireEvent fev;
        fev.pc = pc_;
        fev.finalPred = &b;
        fev.ghist = &gh_;
        fev.meta = &meta;
        lp_.fire(fev);

        bpu::ResolveEvent ev;
        ev.pc = pc_;
        ev.ghist = &gh_;
        ev.meta = &meta;
        ev.brMask[slot_] = true;
        ev.takenMask[slot_] = actual;
        ev.cfiValid = actual;
        ev.cfiIdx = slot_;
        ev.cfiType = bpu::CfiType::Br;
        ev.cfiTaken = actual;
        ev.mispredicted = pred != actual;
        ev.predicted = &b;
        if (ev.mispredicted)
            lp_.mispredict(ev);
        lp_.update(ev);
        gh_.push(actual);
        return pred;
    }

    LoopPredictor& lp_;
    Addr pc_;
    unsigned slot_;
    HistoryRegister gh_;
};

TEST(LoopPredictor, LearnsFixedTrip)
{
    LoopPredictor lp("LOOP", smallLoop());
    LoopDriver drv(lp, 0x9000, 1);
    const auto outs = test::loopOutcomes(12, 400);
    int correct = 0, total = 0;
    for (std::size_t i = 0; i < outs.size(); ++i) {
        const bool p = drv.round(outs[i]);
        if (i > outs.size() / 2) {
            ++total;
            correct += p == outs[i];
        }
    }
    EXPECT_GT(static_cast<double>(correct) / total, 0.99);
}

TEST(LoopPredictor, IgnoresShortTrips)
{
    LoopParams p = smallLoop();
    p.minTrip = 4;
    LoopPredictor lp("LOOP", p);
    LoopDriver drv(lp, 0x9000, 0);
    // Trip-2 loop: below minTrip, the predictor must pass through
    // (base predicts taken) rather than override.
    const auto outs = test::loopOutcomes(2, 200);
    for (std::size_t i = 0; i < outs.size(); ++i) {
        const bool pred = drv.round(outs[i]);
        if (i > 100)
            EXPECT_TRUE(pred) << "short loops must pass through";
    }
}

TEST(LoopPredictor, LosesConfidenceOnIrregularLoop)
{
    LoopPredictor lp("LOOP", smallLoop());
    LoopDriver drv(lp, 0x9000, 0);
    // Alternate trips 6 and 9: confidence can never persist, so after
    // warmup the predictor must mostly pass through (base: taken).
    std::vector<bool> outs;
    for (int it = 0; it < 150; ++it) {
        const unsigned trip = it % 2 == 0 ? 6 : 9;
        for (unsigned k = 0; k < trip; ++k)
            outs.push_back(k + 1 < trip);
    }
    int overrides = 0;
    for (std::size_t i = 0; i < outs.size(); ++i) {
        const bool pred = drv.round(outs[i]);
        if (i > outs.size() / 2 && pred != true)
            ++overrides; // predicted an exit => confident override
    }
    // It may occasionally gain confidence but must not predict exits
    // regularly (< one per loop run on average).
    EXPECT_LT(overrides, 75);
}

TEST(LoopPredictor, RepairRestoresSpeculativeCount)
{
    LoopPredictor lp("LOOP", smallLoop());
    LoopDriver drv(lp, 0x9000, 0);
    // Train to confidence on a trip-8 loop.
    const auto outs = test::loopOutcomes(8, 200);
    for (bool o : outs)
        drv.round(o);

    // Speculatively fire twice beyond the architectural point, then
    // deliver repairs with the stored metadata; the next prediction
    // sequence must continue correctly.
    bpu::PredictContext ctx;
    ctx.pc = 0x9000;
    ctx.validSlots = 4;
    ctx.ghist = &drv.gh_;
    std::vector<bpu::Metadata> metas(2);
    for (int k = 0; k < 2; ++k) {
        bpu::PredictionBundle b;
        b.width = 4;
        b.slots[0].valid = true;
        b.slots[0].taken = true;
        lp.predict(ctx, b, metas[k]);
        bpu::FireEvent fev;
        fev.pc = 0x9000;
        fev.finalPred = &b;
        fev.ghist = &drv.gh_;
        fev.meta = &metas[k];
        lp.fire(fev);
    }
    // Walk repair youngest-first (the §IV-B2 forwards-walk order).
    for (int k = 1; k >= 0; --k) {
        bpu::ResolveEvent ev;
        ev.pc = 0x9000;
        ev.ghist = &drv.gh_;
        ev.meta = &metas[k];
        ev.brMask[0] = true;
        lp.repair(ev);
    }
    // Resume the loop where it architecturally was: accuracy holds.
    int correct = 0;
    const auto more = test::loopOutcomes(8, 50);
    for (bool o : more)
        correct += drv.round(o) == o;
    EXPECT_GT(correct / 400.0, 0.95);
}

TEST(LoopPredictor, MispredictDropsConfidence)
{
    LoopPredictor lp("LOOP", smallLoop());
    LoopDriver drv(lp, 0x9000, 0);
    const auto outs = test::loopOutcomes(10, 150);
    for (bool o : outs)
        drv.round(o);
    // Force a surprise outcome: trip suddenly shortens.
    drv.round(true);
    drv.round(true);
    drv.round(false); // early exit => mispredict while confident
    // Immediately after, the predictor must stop overriding.
    bpu::PredictContext ctx;
    ctx.pc = 0x9000;
    ctx.validSlots = 4;
    ctx.ghist = &drv.gh_;
    bpu::PredictionBundle b;
    b.width = 4;
    b.slots[0].valid = true;
    b.slots[0].taken = true;
    bpu::Metadata meta{};
    lp.predict(ctx, b, meta);
    EXPECT_TRUE(b.slots[0].taken)
        << "after a loop mispredict the entry must lose confidence";
}

TEST(LoopPredictor, StorageAccounting)
{
    LoopPredictor lp("LOOP", smallLoop());
    EXPECT_GT(lp.storageBits(), 0u);
    EXPECT_EQ(lp.metaBits(), 1u + 10);
}

} // namespace
} // namespace cobra::comps
