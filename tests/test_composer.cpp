#include <gtest/gtest.h>

#include "bpu/composer.hpp"

namespace cobra::bpu {
namespace {

/**
 * Scriptable sub-component for exercising composer semantics: it can
 * hit or miss, provide full or partial (target-only) predictions, and
 * records what it observed at predict time.
 */
class FakePred : public PredictorComponent
{
  public:
    FakePred(std::string name, unsigned latency)
        : PredictorComponent(std::move(name), latency, 4)
    {
    }

    bool hit = false;
    bool taken = false;
    bool provideTarget = false;
    Addr target = kInvalidAddr;
    unsigned slot = 0;
    bool targetOnly = false;

    // Observations.
    mutable int predictCalls = 0;
    mutable bool sawGhist = false;
    mutable PredictionBundle lastIn;

    unsigned metaBits() const override { return 8; }

    void
    predict(const PredictContext& ctx, PredictionBundle& inout,
            Metadata& meta) override
    {
        ++predictCalls;
        sawGhist = ctx.ghist != nullptr;
        lastIn = inout;
        meta[0] = 0xAB;
        if (!hit)
            return;
        auto& s = inout.slots[slot];
        if (!targetOnly) {
            s.valid = true;
            s.taken = taken;
        }
        if (provideTarget) {
            s.targetValid = true;
            s.target = target;
            s.type = CfiType::Br;
        }
    }

    std::uint64_t storageBits() const override { return 64; }
};

struct Pipeline
{
    Topology topo;
    FakePred* ubtb;
    FakePred* pht;
    FakePred* loop;
};

/** Build LOOP2 > PHT2 > uBTB1 or uBTB1 > PHT2 > LOOP2 (paper §IV-A). */
Pipeline
makeFig4(bool loopOnTop)
{
    Pipeline p;
    p.ubtb = p.topo.make<FakePred>("uBTB", 1);
    p.pht = p.topo.make<FakePred>("PHT", 2);
    p.loop = p.topo.make<FakePred>("LOOP", 2);
    if (loopOnTop)
        p.topo.setRoot(p.topo.chainOf({p.loop, p.pht, p.ubtb}));
    else
        p.topo.setRoot(p.topo.chainOf({p.ubtb, p.pht, p.loop}));
    return p;
}

QueryState
makeQuery(ComposedPredictor& cp, Addr pc = 0x1000)
{
    QueryState q;
    q.reset(pc, 4, static_cast<unsigned>(cp.components().size()), 4);
    HistoryRegister gh(32);
    q.captureHistory(gh, 0);
    return q;
}

TEST(Composer, Fig4BothTopologiesAgreeAtStage1)
{
    for (bool loopOnTop : {true, false}) {
        Pipeline p = makeFig4(loopOnTop);
        p.ubtb->hit = true;
        p.ubtb->taken = true;
        p.ubtb->provideTarget = true;
        p.ubtb->target = 0x2000;
        ComposedPredictor cp(std::move(p.topo), 4);
        QueryState q = makeQuery(cp);
        const PredictionBundle b1 = cp.evaluateStage(q, 1);
        EXPECT_TRUE(b1.slots[0].taken) << "loopOnTop=" << loopOnTop;
        EXPECT_EQ(b1.slots[0].target, 0x2000u);
    }
}

TEST(Composer, Fig4Stage2DiffersByOrdering)
{
    // PHT hits not-taken; uBTB hit taken. First topology: PHT
    // overrides the uBTB at cycle 2. Second: uBTB stays final.
    {
        Pipeline p = makeFig4(/*loopOnTop=*/true);
        p.ubtb->hit = true;
        p.ubtb->taken = true;
        p.pht->hit = true;
        p.pht->taken = false;
        ComposedPredictor cp(std::move(p.topo), 4);
        QueryState q = makeQuery(cp);
        EXPECT_TRUE(cp.evaluateStage(q, 1).slots[0].taken);
        EXPECT_FALSE(cp.evaluateStage(q, 2).slots[0].taken)
            << "LOOP2 > PHT2 > uBTB1: PHT overrides at cycle 2";
    }
    {
        Pipeline p = makeFig4(/*loopOnTop=*/false);
        p.ubtb->hit = true;
        p.ubtb->taken = true;
        p.pht->hit = true;
        p.pht->taken = false;
        ComposedPredictor cp(std::move(p.topo), 4);
        QueryState q = makeQuery(cp);
        EXPECT_TRUE(cp.evaluateStage(q, 1).slots[0].taken);
        EXPECT_TRUE(cp.evaluateStage(q, 2).slots[0].taken)
            << "uBTB1 > PHT2 > LOOP2: the uBTB hit stays final";
    }
}

TEST(Composer, Fig4CarryOverWhenNothingHits)
{
    Pipeline p = makeFig4(true);
    p.ubtb->hit = true;
    p.ubtb->taken = true;
    // Neither PHT nor LOOP hit: cycle-1 prediction carries to cycle 2.
    ComposedPredictor cp(std::move(p.topo), 4);
    QueryState q = makeQuery(cp);
    EXPECT_TRUE(cp.evaluateStage(q, 1).slots[0].taken);
    EXPECT_TRUE(cp.evaluateStage(q, 2).slots[0].taken);
}

TEST(Composer, LoopBeatsPhtWhenBothHit)
{
    Pipeline p = makeFig4(true);
    p.pht->hit = true;
    p.pht->taken = true;
    p.loop->hit = true;
    p.loop->taken = false;
    ComposedPredictor cp(std::move(p.topo), 4);
    QueryState q = makeQuery(cp);
    EXPECT_FALSE(cp.evaluateStage(q, 2).slots[0].taken);
}

TEST(Composer, PartialTargetOnlyOverride)
{
    // A target-only BTB (Fig. 3) under a direction table: the final
    // bundle combines the direction with the BTB's target.
    Topology topo;
    auto* dir = topo.make<FakePred>("DIR", 2);
    auto* btb = topo.make<FakePred>("BTB", 1);
    dir->hit = true;
    dir->taken = true;
    btb->hit = true;
    btb->targetOnly = true;
    btb->provideTarget = true;
    btb->target = 0x4444;
    topo.setRoot(topo.chainOf({dir, btb}));
    ComposedPredictor cp(std::move(topo), 4);
    QueryState q = makeQuery(cp);
    const PredictionBundle b = cp.evaluateStage(q, 2);
    EXPECT_TRUE(b.slots[0].valid);
    EXPECT_TRUE(b.slots[0].taken);
    EXPECT_TRUE(b.slots[0].targetValid);
    EXPECT_EQ(b.slots[0].target, 0x4444u);
}

TEST(Composer, ComponentPredictsExactlyOnce)
{
    Pipeline p = makeFig4(true);
    FakePred* pht = p.pht;
    FakePred* ubtb = p.ubtb;
    ComposedPredictor cp(std::move(p.topo), 4);
    QueryState q = makeQuery(cp);
    cp.evaluateStage(q, 1);
    cp.evaluateStage(q, 2);
    cp.evaluateStage(q, 2);
    EXPECT_EQ(ubtb->predictCalls, 1);
    EXPECT_EQ(pht->predictCalls, 1);
}

TEST(Composer, HistoryHiddenFromStage1Components)
{
    Pipeline p = makeFig4(true);
    FakePred* ubtb = p.ubtb;
    FakePred* pht = p.pht;
    ComposedPredictor cp(std::move(p.topo), 4);
    QueryState q = makeQuery(cp);
    cp.evaluateStage(q, 1);
    cp.evaluateStage(q, 2);
    EXPECT_FALSE(ubtb->sawGhist)
        << "histories arrive at the end of Fetch-1 (paper §III-B)";
    EXPECT_TRUE(pht->sawGhist);
}

TEST(Composer, PredictInReflectsLowerPriorityOutput)
{
    Pipeline p = makeFig4(true);
    p.ubtb->hit = true;
    p.ubtb->taken = true;
    FakePred* pht = p.pht;
    ComposedPredictor cp(std::move(p.topo), 4);
    QueryState q = makeQuery(cp);
    cp.evaluateStage(q, 1);
    cp.evaluateStage(q, 2);
    EXPECT_TRUE(pht->lastIn.slots[0].valid)
        << "predict_in(d) carries the uBTB's earlier prediction";
    EXPECT_TRUE(pht->lastIn.slots[0].taken);
}

TEST(Composer, MetadataGatheredPerComponent)
{
    Pipeline p = makeFig4(true);
    ComposedPredictor cp(std::move(p.topo), 4);
    QueryState q = makeQuery(cp);
    for (unsigned d = 1; d <= 2; ++d)
        cp.evaluateStage(q, d);
    ASSERT_EQ(q.metadata().size(), 3u);
    for (const auto& m : q.metadata())
        EXPECT_EQ(m[0], 0xABu);
}

TEST(Composer, MonotonicPredictionStrength)
{
    // Paper §III-A: for d > p, a component's contribution must be the
    // same or more powerful — with static fakes, re-evaluating any
    // stage must be idempotent.
    Pipeline p = makeFig4(true);
    p.ubtb->hit = true;
    p.ubtb->taken = true;
    p.pht->hit = true;
    p.pht->taken = true;
    ComposedPredictor cp(std::move(p.topo), 4);
    QueryState q = makeQuery(cp);
    cp.evaluateStage(q, 1);
    const PredictionBundle a = cp.evaluateStage(q, 2);
    const PredictionBundle b = cp.evaluateStage(q, 2);
    EXPECT_EQ(a.slots[0].valid, b.slots[0].valid);
    EXPECT_EQ(a.slots[0].taken, b.slots[0].taken);
    EXPECT_EQ(a.slots[0].target, b.slots[0].target);
}

TEST(Composer, RejectsArbiterFasterThanChildren)
{
    // An arbiter responding before its inputs exist is invalid.
    class FastArb : public FakePred
    {
      public:
        using FakePred::FakePred;
        bool isArbiter() const override { return true; }
    };
    Topology topo;
    auto* arb = topo.make<FastArb>("ARB", 1);
    auto* slow = topo.make<FakePred>("SLOW", 3);
    topo.setRoot(topo.arb(arb, {topo.leaf(slow)}));
    EXPECT_THROW(ComposedPredictor(std::move(topo), 4),
                 std::logic_error);
}

TEST(Composer, StorageSumsComponents)
{
    Pipeline p = makeFig4(true);
    ComposedPredictor cp(std::move(p.topo), 4);
    EXPECT_EQ(cp.storageBits(), 3u * 64);
    EXPECT_EQ(cp.totalMetaBits(), 3u * 8);
}

} // namespace
} // namespace cobra::bpu
