/**
 * @file
 * Shared helpers for the test suite: micro-program construction and a
 * single-branch driver for exercising components through the full
 * COBRA event protocol without the core model.
 */

#ifndef COBRA_TESTS_TEST_UTIL_HPP
#define COBRA_TESTS_TEST_UTIL_HPP

#include <functional>
#include <vector>

#include "bpu/component.hpp"
#include "program/builder.hpp"

namespace cobra::test {

/**
 * Drives one PredictorComponent through predict/update cycles for a
 * single branch at a fixed slot, maintaining a consistent global
 * history — the component-level contract of paper §III.
 */
class SingleBranchDriver
{
  public:
    SingleBranchDriver(bpu::PredictorComponent& comp, Addr pc,
                       unsigned slot, unsigned ghist_bits = 64)
        : comp_(comp), pc_(pc), slot_(slot), gh_(ghist_bits)
    {
    }

    /**
     * One predict/update round with architectural outcome @p actual.
     * Returns the component's prediction (pass-through base predicts
     * not-taken).
     */
    bool
    round(bool actual)
    {
        bpu::PredictContext ctx;
        ctx.pc = pc_;
        ctx.validSlots = comp_.fetchWidth();
        ctx.ghist = &gh_;
        ctx.lhist = lhist_;

        bpu::PredictionBundle b;
        b.width = comp_.fetchWidth();
        b.slots[slot_].valid = true;
        b.slots[slot_].taken = baseTaken_;
        bpu::Metadata meta{};
        comp_.predict(ctx, b, meta);
        const bool pred = b.slots[slot_].valid && b.slots[slot_].taken;

        bpu::ResolveEvent ev;
        ev.pc = pc_;
        ev.ghist = &gh_;
        ev.lhist = lhist_;
        ev.meta = &meta;
        ev.brMask[slot_] = true;
        ev.takenMask[slot_] = actual;
        ev.cfiValid = actual;
        ev.cfiIdx = slot_;
        ev.cfiType = bpu::CfiType::Br;
        ev.cfiTaken = actual;
        ev.target = actual ? pc_ + 0x100 : kInvalidAddr;
        ev.mispredicted = pred != actual;
        ev.predicted = &b;
        comp_.update(ev);

        gh_.push(actual);
        lhist_ = (lhist_ << 1) | (actual ? 1 : 0);
        return pred;
    }

    /**
     * Run @p outcomes through the driver, measuring accuracy over the
     * second half (the first half warms up).
     */
    double
    accuracy(const std::vector<bool>& outcomes)
    {
        std::size_t correct = 0;
        std::size_t measured = 0;
        for (std::size_t i = 0; i < outcomes.size(); ++i) {
            const bool pred = round(outcomes[i]);
            if (i >= outcomes.size() / 2) {
                ++measured;
                if (pred == outcomes[i])
                    ++correct;
            }
        }
        return measured == 0 ? 0.0
                             : static_cast<double>(correct) / measured;
    }

    /** Set the pass-through base prediction direction. */
    void setBaseTaken(bool t) { baseTaken_ = t; }

    const HistoryRegister& ghist() const { return gh_; }

  private:
    bpu::PredictorComponent& comp_;
    Addr pc_;
    unsigned slot_;
    HistoryRegister gh_;
    std::uint64_t lhist_ = 0;
    bool baseTaken_ = false;
};

/** Outcome sequence for a counted loop (T^(trip-1) N repeating). */
inline std::vector<bool>
loopOutcomes(unsigned trip, std::size_t iterations)
{
    std::vector<bool> v;
    for (std::size_t i = 0; i < iterations; ++i)
        for (unsigned k = 0; k < trip; ++k)
            v.push_back(k + 1 < trip);
    return v;
}

/** Outcome sequence repeating a fixed bit pattern. */
inline std::vector<bool>
periodicOutcomes(std::uint64_t pattern, unsigned len, std::size_t n)
{
    std::vector<bool> v;
    for (std::size_t i = 0; i < n; ++i)
        v.push_back((pattern >> (i % len)) & 1);
    return v;
}

/** Outcomes that are a hash function of the previous @p depth bits. */
inline std::vector<bool>
historyCorrelatedOutcomes(unsigned depth, std::size_t n,
                          std::uint64_t seed = 0x5eed)
{
    std::vector<bool> v;
    std::uint64_t h = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const bool bit = mix64(seed ^ (h & maskBits(depth))) & 1;
        v.push_back(bit);
        h = (h << 1) | (bit ? 1 : 0);
    }
    return v;
}

/**
 * A minimal single-branch infinite-loop program:
 *   top: <pad nops> ; br(behaviour) -> taken: skip 4; join; jmp top
 * Returns the program with its entry set.
 */
inline prog::Program
singleBranchProgram(const prog::BranchBehavior& b, unsigned pad = 5)
{
    prog::ProgramBuilder bld(1234);
    prog::CodeMix mix;
    mix.fLoad = 0;
    mix.fStore = 0;
    mix.fMul = 0;
    mix.fDiv = 0;
    mix.fFp = 0;
    const Addr top = bld.here();
    bld.emitStraightLine(pad, mix);
    bld.emitIfElse(b, 4, 4, mix);
    bld.emitJump(top);
    prog::Program p = bld.takeProgram();
    p.setEntry(top);
    return p;
}

} // namespace cobra::test

#endif // COBRA_TESTS_TEST_UTIL_HPP
