/**
 * @file
 * Trace replay (trace/replay.hpp) tests: capture-mode traces drive
 * full-core replays bit-identically to execute mode across the paper
 * designs and every frontend/backend option, checkpoints are
 * interchangeable between modes, warp runs from traces, construction
 * mismatches are structured ConfigErrors, the workload cache decodes
 * each trace exactly once, and lockstep sweeps group replay points.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include <unistd.h>

#include "guard/errors.hpp"
#include "program/workload.hpp"
#include "sim/presets.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "trace/replay.hpp"
#include "trace/trace.hpp"
#include "warp/snapshot.hpp"
#include "warp/warp.hpp"

using namespace cobra;

namespace {

prog::WorkloadCache&
cache()
{
    static prog::WorkloadCache c;
    return c;
}

sim::SimConfig
smallCfg(sim::Design d)
{
    sim::SimConfig cfg = sim::makeConfig(d);
    cfg.warmupInsts = 2000;
    cfg.maxInsts = 40000;
    return cfg;
}

std::string
scratchDir(const char* leaf)
{
    // ctest runs each test as its own process; keep scratch paths
    // per-process so parallel tests never clobber each other's files.
    const std::filesystem::path p =
        std::filesystem::temp_directory_path() /
        (std::string(leaf) + "." + std::to_string(::getpid()));
    std::filesystem::remove_all(p);
    std::filesystem::create_directories(p);
    return p.string();
}

/** Capture `leela` once with enough budget for every test here. */
std::shared_ptr<const trace::DecodedTrace>
leelaTrace()
{
    static std::shared_ptr<const trace::DecodedTrace> tr = [] {
        const std::string path =
            scratchDir("cobra_replay_fix") + "/leela.cbtr";
        trace::captureTrace(cache().get("leela"), path, 60'000);
        return cache().getTrace(path);
    }();
    return tr;
}

} // namespace

// ---------------------------------------------------------------------
// Bit identity with execute mode
// ---------------------------------------------------------------------

TEST(TraceReplay, BitIdenticalToExecuteForEveryPaperDesign)
{
    const prog::Program& p = cache().get("leela");
    for (sim::Design d : sim::paperDesigns()) {
        const sim::SimConfig cfg = smallCfg(d);
        sim::Simulator exec(p, sim::buildTopology(d), cfg);
        const sim::SimResult want = exec.run();

        sim::SimConfig rcfg = cfg;
        rcfg.replayTrace = leelaTrace();
        sim::Simulator replay(p, sim::buildTopology(d), rcfg);
        const sim::SimResult got = replay.run();

        EXPECT_EQ(got, want)
            << sim::designName(d) << ": replay diverged from execute";
    }
}

TEST(TraceReplay, BitIdenticalUnderSfbGhistAuditAndSerializeVariants)
{
    const prog::Program& p = cache().get("leela");
    struct Variant
    {
        const char* name;
        void (*apply)(sim::SimConfig&);
    };
    const Variant variants[] = {
        {"sfb", [](sim::SimConfig& c) { c.backend.sfbEnabled = true; }},
        {"ghist-none",
         [](sim::SimConfig& c) {
             c.frontend.ghistMode = bpu::GhistRepairMode::None;
             c.backend.ghistMode = bpu::GhistRepairMode::None;
         }},
        {"ghist-repair",
         [](sim::SimConfig& c) {
             c.frontend.ghistMode = bpu::GhistRepairMode::RepairOnly;
             c.backend.ghistMode = bpu::GhistRepairMode::RepairOnly;
         }},
        {"audit", [](sim::SimConfig& c) { c.audit = true; }},
        {"serialize",
         [](sim::SimConfig& c) { c.frontend.serializeFetch = true; }},
    };
    for (const Variant& v : variants) {
        sim::SimConfig cfg = smallCfg(sim::Design::B2);
        v.apply(cfg);
        sim::Simulator exec(p, sim::buildTopology(sim::Design::B2),
                            cfg);
        const sim::SimResult want = exec.run();

        sim::SimConfig rcfg = cfg;
        rcfg.replayTrace = leelaTrace();
        sim::Simulator replay(p, sim::buildTopology(sim::Design::B2),
                              rcfg);
        EXPECT_EQ(replay.run(), want) << "variant " << v.name;
    }
}

// ---------------------------------------------------------------------
// Checkpoint interchange between modes
// ---------------------------------------------------------------------

TEST(TraceReplay, SnapshotsAreInterchangeableBetweenModes)
{
    const prog::Program& p = cache().get("leela");
    const sim::SimConfig cfg = smallCfg(sim::Design::TageL);
    sim::SimConfig rcfg = cfg;
    rcfg.replayTrace = leelaTrace();

    sim::Simulator ref(p, sim::buildTopology(sim::Design::TageL), cfg);
    const sim::SimResult want = ref.run();
    ASSERT_GT(want.cycles, 0u);

    // Execute-mode snapshot resumed under replay...
    sim::Simulator a(p, sim::buildTopology(sim::Design::TageL), cfg);
    ASSERT_TRUE(a.advanceTo(want.cycles / 2));
    const warp::Snapshot execSnap = warp::captureSnapshot(a);

    sim::Simulator b(p, sim::buildTopology(sim::Design::TageL), rcfg);
    warp::restoreSnapshot(b, execSnap);
    EXPECT_EQ(b.run(), want)
        << "execute-mode snapshot diverged when resumed from trace";

    // ...and a replay-mode snapshot resumed under execute. Byte
    // equality of the two archives is the strongest statement of
    // state identity between the modes.
    sim::Simulator c(p, sim::buildTopology(sim::Design::TageL), rcfg);
    ASSERT_TRUE(c.advanceTo(want.cycles / 2));
    const warp::Snapshot replaySnap = warp::captureSnapshot(c);
    EXPECT_EQ(replaySnap.payload, execSnap.payload)
        << "replay-mode state diverged byte-wise from execute mode";

    sim::Simulator e(p, sim::buildTopology(sim::Design::TageL), cfg);
    warp::restoreSnapshot(e, replaySnap);
    EXPECT_EQ(e.run(), want)
        << "replay-mode snapshot diverged when resumed executing";
}

// ---------------------------------------------------------------------
// Warp from a trace
// ---------------------------------------------------------------------

TEST(TraceReplay, WarpEstimatesAreIdenticalFromTraceAndExecute)
{
    const prog::Program& p = cache().get("leela");
    warp::WarpConfig w;
    w.intervals = 3;
    w.warmupCycles = 2000;
    w.jobs = 1;

    const sim::SimConfig cfg = smallCfg(sim::Design::B2);
    const warp::WarpEstimate execEst = warp::runWarp(
        p, [] { return sim::buildTopology(sim::Design::B2); }, cfg, w);

    sim::SimConfig rcfg = cfg;
    rcfg.replayTrace = leelaTrace();
    const warp::WarpEstimate traceEst = warp::runWarp(
        p, [] { return sim::buildTopology(sim::Design::B2); }, rcfg,
        w);

    EXPECT_EQ(traceEst.estimate, execEst.estimate);
    EXPECT_EQ(traceEst.detailedCycles, execEst.detailedCycles);
    EXPECT_EQ(traceEst.ffInsts, execEst.ffInsts);
}

// ---------------------------------------------------------------------
// Construction-time validation
// ---------------------------------------------------------------------

TEST(TraceReplay, MismatchedProgramSeedBudgetAndKindAreConfigErrors)
{
    const sim::SimConfig base = smallCfg(sim::Design::B2);

    {
        // Wrong program: trace captured from leela, workload is x264.
        sim::SimConfig cfg = base;
        cfg.replayTrace = leelaTrace();
        EXPECT_THROW(sim::Simulator(cache().get("x264"),
                                    sim::buildTopology(sim::Design::B2),
                                    cfg),
                     guard::ConfigError);
    }
    {
        // Wrong oracle seed.
        sim::SimConfig cfg = base;
        cfg.replayTrace = leelaTrace();
        cfg.oracleSeed ^= 1;
        EXPECT_THROW(sim::Simulator(cache().get("leela"),
                                    sim::buildTopology(sim::Design::B2),
                                    cfg),
                     guard::ConfigError);
    }
    {
        // Budget beyond the capture guarantee (warmup + measured).
        sim::SimConfig cfg = base;
        cfg.replayTrace = leelaTrace();
        cfg.maxInsts = leelaTrace()->meta.sourceInsts + 1;
        EXPECT_THROW(sim::Simulator(cache().get("leela"),
                                    sim::buildTopology(sim::Design::B2),
                                    cfg),
                     guard::ConfigError);
    }
    {
        // External (imported) traces cannot drive full-core replay.
        trace::TraceMeta meta = leelaTrace()->meta;
        meta.kind = trace::TraceKind::External;
        EXPECT_THROW(trace::validateReplayMeta(meta,
                                               cache().get("leela"),
                                               base.oracleSeed, 1000),
                     guard::ConfigError);
    }
}

// ---------------------------------------------------------------------
// Decode-once sharing
// ---------------------------------------------------------------------

TEST(TraceReplay, WorkloadCacheDecodesEachTraceOnce)
{
    const std::string dir = scratchDir("cobra_replay_cache");
    const std::string path = dir + "/t.cbtr";
    trace::captureTrace(cache().get("x264"), path, 5000);

    prog::WorkloadCache c;
    EXPECT_EQ(c.traceDecodes(), 0u);
    const auto a = c.getTrace(path);
    EXPECT_EQ(c.traceDecodes(), 1u);
    const auto b = c.getTrace(path);
    EXPECT_EQ(a.get(), b.get()) << "repeat get must share the decode";
    EXPECT_EQ(c.traceDecodes(), 1u);

    // A byte-identical copy at a different path is the same trace:
    // content addressing, not path addressing.
    const std::string copy = dir + "/copy.cbtr";
    std::filesystem::copy_file(path, copy);
    const auto d = c.getTrace(copy);
    EXPECT_EQ(a.get(), d.get());
    EXPECT_EQ(c.traceDecodes(), 1u);
    EXPECT_EQ(c.traceCount(), 1u);

    // A different capture is a different trace.
    const std::string other = dir + "/other.cbtr";
    trace::captureTrace(cache().get("xz"), other, 5000);
    const auto e = c.getTrace(other);
    EXPECT_NE(a.get(), e.get());
    EXPECT_EQ(c.traceDecodes(), 2u);
    EXPECT_EQ(c.traceCount(), 2u);
}

// ---------------------------------------------------------------------
// Sweeps: replay points group in lockstep and stay bit-identical
// ---------------------------------------------------------------------

TEST(TraceReplay, LockstepSweepOverSharedTraceIsBitIdentical)
{
    const prog::Program& p = cache().get("leela");
    const auto tr = leelaTrace();

    // Serial execute-mode reference, one design at a time.
    std::vector<sim::SimResult> want;
    for (sim::Design d : sim::paperDesigns()) {
        sim::Simulator s(p, sim::buildTopology(d), smallCfg(d));
        want.push_back(s.run());
    }

    // Lockstep replay sweep: all three designs share one decode and
    // advance in cadence (one replica group, same Program + seed +
    // trace).
    sim::SweepEngine engine(2);
    engine.setLockstep(true);
    for (sim::Design d : sim::paperDesigns()) {
        sim::SweepPoint pt;
        pt.label = sim::designName(d);
        pt.topology = [d] { return sim::buildTopology(d); };
        pt.program = &p;
        pt.cfg = smallCfg(d);
        pt.cfg.replayTrace = tr;
        engine.add(std::move(pt));
    }
    const std::vector<sim::SweepOutcome> outcomes = engine.run();
    ASSERT_EQ(outcomes.size(), want.size());
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        ASSERT_TRUE(outcomes[i].ok()) << outcomes[i].error;
        EXPECT_EQ(outcomes[i].result, want[i])
            << outcomes[i].label << ": lockstep replay diverged";
        EXPECT_GE(outcomes[i].replicaGroup, 2u)
            << outcomes[i].label
            << ": replay points sharing a trace should group";
    }
}

// ---------------------------------------------------------------------
// Capture properties
// ---------------------------------------------------------------------

TEST(TraceReplay, CaptureMatchesRecordTraceCondStream)
{
    // recordTrace (the §II-B evaluator's source) and captureTrace walk
    // the same bare oracle: the conditional sub-stream of a capture
    // must equal the recordTrace stream record for record.
    const prog::Program& p = cache().get("x264");
    const trace::BranchTrace ref = trace::recordTrace(p, 2000);

    const std::string path =
        scratchDir("cobra_replay_rec") + "/x264.cbtr";
    trace::captureTrace(p, path, 20'000);
    const auto dec = trace::loadTrace(path);

    std::size_t i = 0;
    for (std::size_t k = 0;
         k < dec->size() && i < ref.records.size(); ++k) {
        if (dec->typeAt(k) != trace::RecordType::Cond)
            continue;
        const trace::BranchRecord& w = ref.records[i];
        EXPECT_EQ(dec->pc[k], w.pc) << "cond record " << i;
        EXPECT_EQ(dec->takenAt(k), w.taken) << "cond record " << i;
        EXPECT_EQ(dec->slotAt(k), w.slot) << "cond record " << i;
        EXPECT_EQ(dec->target[k], w.target) << "cond record " << i;
        ++i;
    }
    EXPECT_EQ(i, ref.records.size())
        << "capture held fewer cond records than recordTrace";
}

TEST(TraceReplay, EvaluatorResultsMatchAcrossTraceRepresentations)
{
    // The same branch stream evaluated through the legacy BranchTrace
    // and through a decoded binary trace must produce the same
    // idealized result.
    const prog::Program& p = cache().get("xz");
    const trace::BranchTrace ref = trace::recordTrace(p, 8000);

    const std::string path =
        scratchDir("cobra_replay_eval") + "/xz.cbtr";
    trace::TraceMeta meta;
    meta.kind = trace::TraceKind::External;
    meta.fetchWidth = 4;
    meta.name = "xz-conds";
    {
        trace::TraceWriter w(path, meta);
        for (const trace::BranchRecord& r : ref.records) {
            trace::TraceRecord t;
            t.pc = r.pc;
            t.type = trace::RecordType::Cond;
            t.taken = r.taken;
            t.target = r.target;
            t.slot = static_cast<std::uint8_t>(r.slot);
            w.add(t);
        }
        w.finalize();
    }
    const auto dec = trace::loadTrace(path);

    trace::TraceDrivenEvaluator evA(
        bpu::ComposedPredictor(sim::buildTopology(sim::Design::TageL),
                               4),
        64);
    trace::TraceDrivenEvaluator evB(
        bpu::ComposedPredictor(sim::buildTopology(sim::Design::TageL),
                               4),
        64);
    const trace::TraceResult a = evA.evaluate(ref, 2000);
    const trace::TraceResult b = evB.evaluate(*dec, 2000);
    EXPECT_EQ(a.branches, b.branches);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
}

TEST(TraceReplay, CaptureIsDeterministic)
{
    const std::string dir = scratchDir("cobra_replay_det");
    const prog::Program& p = cache().get("leela");
    trace::captureTrace(p, dir + "/a.cbtr", 10'000);
    trace::captureTrace(p, dir + "/b.cbtr", 10'000);
    trace::TraceReader ra(dir + "/a.cbtr"), rb(dir + "/b.cbtr");
    EXPECT_EQ(ra.contentDigest(), rb.contentDigest())
        << "capture must be byte-deterministic";
}
