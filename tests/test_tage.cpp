#include <gtest/gtest.h>

#include "components/tage.hpp"
#include "test_util.hpp"

namespace cobra::comps {
namespace {

TEST(Tage, DefaultTageLConfig)
{
    const TageParams p = TageParams::tageL(4);
    EXPECT_EQ(p.tables.size(), 7u);
    Tage t("TAGE", p);
    EXPECT_EQ(t.maxHistLen(), 64u);
    EXPECT_EQ(t.latency(), 3u);
}

TEST(Tage, ColdPassesThrough)
{
    Tage t("TAGE", TageParams::tageL(4));
    HistoryRegister gh(64);
    bpu::PredictContext ctx;
    ctx.pc = 0x7000;
    ctx.validSlots = 4;
    ctx.ghist = &gh;
    bpu::PredictionBundle b;
    b.width = 4;
    b.slots[1].valid = true;
    b.slots[1].taken = true;
    bpu::Metadata meta{};
    t.predict(ctx, b, meta);
    EXPECT_TRUE(b.slots[1].valid);
    EXPECT_TRUE(b.slots[1].taken) << "cold TAGE must not override";
}

TEST(Tage, LearnsDeepHistoryCorrelation)
{
    Tage t("TAGE", TageParams::tageL(4));
    test::SingleBranchDriver drv(t, 0x7000, 0);
    const auto outs = test::historyCorrelatedOutcomes(14, 20000);
    EXPECT_GT(drv.accuracy(outs), 0.97)
        << "14-deep correlation needs the longer tagged tables";
}

TEST(Tage, LearnsLoopExits)
{
    Tage t("TAGE", TageParams::tageL(4));
    test::SingleBranchDriver drv(t, 0x7000, 2);
    drv.setBaseTaken(true);
    const auto outs = test::loopOutcomes(7, 2500);
    EXPECT_GT(drv.accuracy(outs), 0.98);
}

TEST(Tage, LearnsShortPeriodicPattern)
{
    Tage t("TAGE", TageParams::tageL(4));
    test::SingleBranchDriver drv(t, 0x7000, 0);
    const auto outs = test::periodicOutcomes(0b0101101, 7, 12000);
    EXPECT_GT(drv.accuracy(outs), 0.97);
}

TEST(Tage, TracksBiasWithoutHistorySignal)
{
    Tage t("TAGE", TageParams::tageL(4));
    test::SingleBranchDriver drv(t, 0x7000, 0);
    Rng rng(5);
    std::vector<bool> outs;
    for (int i = 0; i < 10000; ++i)
        outs.push_back(rng.chance(0.9));
    EXPECT_GT(drv.accuracy(outs), 0.8);
}

TEST(Tage, SuperscalarSlotsIndependent)
{
    Tage t("TAGE", TageParams::tageL(4));
    test::SingleBranchDriver d0(t, 0x7000, 0);
    test::SingleBranchDriver d3(t, 0x7000, 3);
    // Slot 0 always taken, slot 3 alternates; both learnable.
    int c0 = 0, c3 = 0;
    for (int i = 0; i < 4000; ++i) {
        const bool p0 = d0.round(true);
        const bool p3 = d3.round(i % 2 == 0);
        if (i > 2000) {
            c0 += p0 == true;
            c3 += p3 == (i % 2 == 0);
        }
    }
    EXPECT_GT(c0 / 1999.0, 0.95);
    EXPECT_GT(c3 / 1999.0, 0.95);
}

TEST(Tage, MetadataBitsBudget)
{
    Tage t("TAGE", TageParams::tageL(4));
    EXPECT_EQ(t.metaBits(), 4u * 12);
    EXPECT_LE(t.metaBits(), 256u) << "must fit the Metadata payload";
}

TEST(Tage, StorageMatchesTableGeometry)
{
    TageParams p = TageParams::tageL(4);
    Tage t("TAGE", p);
    std::uint64_t expect = 0;
    for (const auto& tab : p.tables)
        expect += (1 + tab.tagBits + p.uBits + 4ull * p.ctrBits) *
                  tab.sets;
    EXPECT_EQ(t.storageBits(), expect);
}

TEST(Tage, UpdateWithoutBranchesIsNoop)
{
    Tage t("TAGE", TageParams::tageL(4));
    HistoryRegister gh(64);
    bpu::Metadata meta{};
    bpu::ResolveEvent ev;
    ev.pc = 0x7000;
    ev.ghist = &gh;
    ev.meta = &meta;
    // No brMask bits set: nothing should change (and no crash).
    EXPECT_NO_FATAL_FAILURE(t.update(ev));
}

TEST(Tage, RecoversAfterBehaviourChange)
{
    // A branch that flips from always-taken to a pattern: TAGE must
    // re-learn (allocation + u-decay keep the tables adaptive).
    Tage t("TAGE", TageParams::tageL(4));
    test::SingleBranchDriver drv(t, 0x7000, 1);
    for (int i = 0; i < 3000; ++i)
        drv.round(true);
    const auto outs = test::periodicOutcomes(0b001, 3, 9000);
    EXPECT_GT(drv.accuracy(outs), 0.9);
}

} // namespace
} // namespace cobra::comps
