#include <gtest/gtest.h>

#include "program/analysis.hpp"
#include "program/workload.hpp"

namespace cobra::prog {
namespace {

TEST(Analysis, CountsMatchStaticImage)
{
    const Program p =
        buildWorkload(WorkloadLibrary::profile("gcc"));
    const WorkloadStats s = analyzeWorkload(p, 20'000);
    EXPECT_EQ(s.staticInsts, p.size());
    EXPECT_EQ(s.staticBranches, p.countOpClass(OpClass::CondBranch));
    EXPECT_EQ(s.dynInsts, 20'000u);
    EXPECT_GT(s.dynBranches, 0u);
    EXPECT_LE(s.dynTakenBranches, s.dynBranches);
}

TEST(Analysis, ProxyCharactersHold)
{
    // The documented proxy characters (docs/WORKLOADS.md) must hold
    // in the generated programs.
    const auto stats = [](const char* name) {
        return analyzeWorkload(
            buildWorkload(WorkloadLibrary::profile(name)), 60'000);
    };

    const WorkloadStats mcf = stats("mcf");
    const WorkloadStats x264 = stats("x264");
    const WorkloadStats gcc = stats("gcc");
    const WorkloadStats coremark = stats("coremark");
    const WorkloadStats dhrystone = stats("dhrystone");

    EXPECT_GT(mcf.memDensity(), x264.memDensity())
        << "mcf is the memory-bound proxy";
    EXPECT_GT(gcc.staticBranches, 2 * x264.staticBranches)
        << "gcc carries the aliasing-pressure branch population";
    EXPECT_GT(coremark.staticSfbEligible, 10u)
        << "coremark is the SFB showcase";
    EXPECT_GT(dhrystone.branchDensity(), 0.08)
        << "dhrystone is branch-dense";
}

TEST(Analysis, BehaviorMixMatchesProfileWeights)
{
    // x264 is loop/biased dominated; deepsjeng gcorr dominated.
    const WorkloadStats x264 = analyzeWorkload(
        buildWorkload(WorkloadLibrary::profile("x264")), 1);
    const WorkloadStats sjeng = analyzeWorkload(
        buildWorkload(WorkloadLibrary::profile("deepsjeng")), 1);

    const auto get = [](const WorkloadStats& s,
                        BranchBehavior::Kind k) {
        auto it = s.staticByKind.find(k);
        return it == s.staticByKind.end() ? std::size_t{0} : it->second;
    };
    EXPECT_GT(get(sjeng, BranchBehavior::Kind::GlobalCorrelated),
              get(x264, BranchBehavior::Kind::GlobalCorrelated));
    EXPECT_GT(get(x264, BranchBehavior::Kind::Loop) +
                  get(x264, BranchBehavior::Kind::Biased),
              get(x264, BranchBehavior::Kind::GlobalCorrelated));
}

TEST(Analysis, KindNamesComplete)
{
    EXPECT_STREQ(behaviorKindName(BranchBehavior::Kind::Biased),
                 "biased");
    EXPECT_STREQ(behaviorKindName(BranchBehavior::Kind::Loop), "loop");
    EXPECT_STREQ(
        behaviorKindName(BranchBehavior::Kind::GlobalCorrelated),
        "gcorr");
}

} // namespace
} // namespace cobra::prog
