#include <gtest/gtest.h>

#include "components/perceptron.hpp"
#include "test_util.hpp"

namespace cobra::comps {
namespace {

PerceptronParams
smallPerceptron()
{
    PerceptronParams p;
    p.entries = 64;
    p.histBits = 16;
    p.latency = 3;
    p.fetchWidth = 4;
    return p;
}

TEST(Perceptron, LearnsBias)
{
    Perceptron pc("PERC", smallPerceptron());
    test::SingleBranchDriver drv(pc, 0x3000, 0);
    std::vector<bool> always(1000, true);
    EXPECT_GT(drv.accuracy(always), 0.99);
}

TEST(Perceptron, LearnsLinearlySeparableHistoryFunction)
{
    // Outcome equals the history bit 3 positions ago — a single
    // weight carries the whole function.
    Perceptron pc("PERC", smallPerceptron());
    test::SingleBranchDriver drv(pc, 0x3000, 0);
    std::vector<bool> outs2;
    std::uint64_t hist = 0;
    for (int i = 0; i < 4000; ++i) {
        const bool bit = i < 3 ? (i % 2 == 0) : ((hist >> 2) & 1);
        outs2.push_back(bit);
        hist = (hist << 1) | (bit ? 1 : 0);
    }
    EXPECT_GT(drv.accuracy(outs2), 0.95);
}

TEST(Perceptron, SinglePredictionPerPacket)
{
    // §III-C: the perceptron provides one prediction, at the learned
    // slot; other slots must pass through.
    Perceptron pc("PERC", smallPerceptron());
    test::SingleBranchDriver drv(pc, 0x3000, 2);
    for (int i = 0; i < 200; ++i)
        drv.round(true);

    HistoryRegister gh = drv.ghist();
    bpu::PredictContext ctx;
    ctx.pc = 0x3000;
    ctx.validSlots = 4;
    ctx.ghist = &gh;
    bpu::PredictionBundle b;
    b.width = 4;
    bpu::Metadata meta{};
    pc.predict(ctx, b, meta);
    EXPECT_TRUE(b.slots[2].valid) << "learned slot predicted";
    EXPECT_FALSE(b.slots[0].valid);
    EXPECT_FALSE(b.slots[1].valid);
    EXPECT_FALSE(b.slots[3].valid);
}

TEST(Perceptron, ThetaFollowsJimenezFormula)
{
    PerceptronParams p = smallPerceptron();
    EXPECT_EQ(p.theta(), static_cast<int>(1.93 * 16 + 14));
}

TEST(Perceptron, StorageAccounting)
{
    Perceptron pc("PERC", smallPerceptron());
    EXPECT_GT(pc.storageBits(), 64u * 16 * 8);
}

} // namespace
} // namespace cobra::comps
