/**
 * @file
 * Composition-search autopilot tests: determinism (the same seed
 * reproduces the same frontier artifact byte for byte), budget
 * respect (every pool member fits the storage/area ceiling), Pareto
 * consistency of the emitted frontier, the exhaustive-mode surrogate
 * bypass, and configuration validation.
 *
 * Tier budgets are kept tiny — these tests exercise the control flow
 * and invariants, not simulation fidelity (the paper numbers come
 * from bench/ and the CI search-smoke job).
 */

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "guard/errors.hpp"
#include "program/workload.hpp"
#include "search/driver.hpp"
#include "search/space.hpp"
#include "search/surrogate.hpp"
#include "serve/json.hpp"

using namespace cobra;
using guard::ConfigError;

namespace {

prog::WorkloadCache&
cache()
{
    static prog::WorkloadCache c;
    return c;
}

/** A search config small enough to run in a unit test. */
search::SearchConfig
tinyConfig()
{
    search::SearchConfig cfg;
    cfg.seed = 7;
    cfg.pool = 8;
    cfg.workloads = {"mcf"};
    cfg.seedEvals = 4;
    cfg.functionalSurvivors = 5;
    cfg.warpSurvivors = 2;
    cfg.finalists = 1;
    cfg.traceBranches = 10'000;
    cfg.traceWarmup = 2'000;
    cfg.warpInsts = 40'000;
    cfg.warpIntervals = 2;
    cfg.detailInsts = 60'000;
    cfg.detailWarmup = 10'000;
    cfg.jobs = 2;
    return cfg;
}

} // namespace

// ---------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------

TEST(Search, SameSeedReproducesTheSameFrontierByteForByte)
{
    const search::SearchConfig cfg = tinyConfig();
    const search::SearchResult a = search::runSearch(cfg, cache());
    const search::SearchResult b = search::runSearch(cfg, cache());
    EXPECT_EQ(search::frontierJson(a), search::frontierJson(b));
    EXPECT_EQ(a.frontier, b.frontier);
    ASSERT_EQ(a.candidates.size(), b.candidates.size());
    for (std::size_t i = 0; i < a.candidates.size(); ++i)
        EXPECT_EQ(a.candidates[i].spec, b.candidates[i].spec) << i;
}

TEST(Search, SpaceSamplingIsDeterministicUnderSeed)
{
    search::SearchSpace s1(123), s2(123), s3(321);
    bool diverged = false;
    for (int i = 0; i < 8; ++i) {
        const sim::DesignSpec a = s1.sample();
        const sim::DesignSpec b = s2.sample();
        EXPECT_EQ(a, b) << "sample " << i;
        if (!(a == s3.sample()))
            diverged = true;
    }
    EXPECT_TRUE(diverged) << "different seeds produced an identical "
                             "8-sample stream";
}

// ---------------------------------------------------------------------
// Budget respect (property over the whole pool)
// ---------------------------------------------------------------------

TEST(Search, EveryPoolMemberRespectsTheBudget)
{
    search::SearchConfig cfg = tinyConfig();
    cfg.budget.areaUm2 = 60'000.0; // Tourney and TAGE-L fit; REF-BIG not.
    cfg.budget.storageKb = 64;
    const search::SearchResult r = search::runSearch(cfg, cache());
    const phys::AreaModel model;
    EXPECT_GE(r.anchorsDropped, 1u); // REF-BIG is over this budget.
    for (const search::Candidate& c : r.candidates) {
        EXPECT_TRUE(search::withinBudget(c.spec, cfg.budget, model))
            << c.id;
        EXPECT_LE(c.areaUm2, cfg.budget.areaUm2) << c.id;
        EXPECT_LE(c.storageBits, cfg.budget.storageKb * 8192) << c.id;
        EXPECT_NE(c.id, "preset-refbig");
    }
    EXPECT_FALSE(r.frontier.empty());
}

TEST(Search, ImpossibleBudgetIsAStructuredError)
{
    search::SearchConfig cfg = tinyConfig();
    cfg.budget.storageKb = 1; // No sampleable candidate fits 1 KB.
    EXPECT_THROW(search::runSearch(cfg, cache()), ConfigError);
}

// ---------------------------------------------------------------------
// Frontier properties
// ---------------------------------------------------------------------

TEST(Search, FrontierIsParetoConsistent)
{
    const search::SearchResult r = search::runSearch(tinyConfig(),
                                                     cache());
    ASSERT_FALSE(r.frontier.empty());
    // onFrontier flags agree with the index list.
    std::set<std::size_t> fset(r.frontier.begin(), r.frontier.end());
    for (std::size_t i = 0; i < r.candidates.size(); ++i)
        EXPECT_EQ(r.candidates[i].onFrontier, fset.count(i) > 0) << i;
    // No certified candidate dominates a frontier member.
    for (std::size_t fi : r.frontier) {
        const search::Candidate& f = r.candidates[fi];
        EXPECT_TRUE(f.hasDetail) << f.id;
        for (const search::Candidate& c : r.candidates) {
            if (!c.hasDetail || &c == &f)
                continue;
            const bool dominates =
                c.detail.accuracy >= f.detail.accuracy &&
                c.areaUm2 <= f.areaUm2 && c.latency <= f.latency &&
                (c.detail.accuracy > f.detail.accuracy ||
                 c.areaUm2 < f.areaUm2 || c.latency < f.latency);
            EXPECT_FALSE(dominates)
                << c.id << " dominates frontier member " << f.id;
        }
    }
    // Anchors are always certified, so the paper's TAGE-L point is on
    // the frontier or dominated by a frontier member (never absent).
    bool tagelCertified = false;
    for (const search::Candidate& c : r.candidates)
        if (c.id == "preset-tagel" && c.hasDetail)
            tagelCertified = true;
    EXPECT_TRUE(tagelCertified);
}

TEST(Search, ExhaustiveSeedEvalsDisableTheSurrogate)
{
    search::SearchConfig cfg = tinyConfig();
    cfg.seedEvals = cfg.pool; // Tier 0 covers the whole pool.
    const search::SearchResult r = search::runSearch(cfg, cache());
    EXPECT_FALSE(r.surrogateUsed);
    EXPECT_EQ(r.evalsSaved, 0u);
    for (const search::Candidate& c : r.candidates)
        EXPECT_TRUE(c.hasFunctional) << c.id;
}

// ---------------------------------------------------------------------
// Artifact schema
// ---------------------------------------------------------------------

TEST(Search, FrontierArtifactCarriesProvenanceAndParses)
{
    const search::SearchResult r = search::runSearch(tinyConfig(),
                                                     cache());
    const std::string doc = search::frontierJson(r);
    const serve::Json j = serve::Json::parse(doc);
    EXPECT_EQ(j.getString("tool", ""), "cobra_search");
    EXPECT_EQ(j.getU64("seed", 0), 7u);
    ASSERT_NE(j.find("budget"), nullptr);
    ASSERT_NE(j.find("tiers"), nullptr);
    ASSERT_NE(j.find("evals"), nullptr);
    ASSERT_NE(j.find("surrogate"), nullptr);
    const serve::Json* cands = j.find("candidates");
    ASSERT_NE(cands, nullptr);
    EXPECT_EQ(cands->asArray().size(), r.candidates.size());
    const serve::Json* frontier = j.find("frontier");
    ASSERT_NE(frontier, nullptr);
    ASSERT_EQ(frontier->asArray().size(), r.frontier.size());
    for (const serve::Json& f : frontier->asArray()) {
        // Frontier entries carry the full inline spec (provenance:
        // the artifact alone reproduces the design).
        ASSERT_NE(f.find("spec"), nullptr);
        const sim::DesignSpec spec =
            sim::DesignSpec::fromJson(*f.find("spec"));
        EXPECT_FALSE(spec.name.empty());
        EXPECT_NE(f.find("accuracy"), nullptr);
        EXPECT_NE(f.find("area_um2"), nullptr);
        EXPECT_NE(f.find("latency"), nullptr);
    }
}

// ---------------------------------------------------------------------
// Configuration validation
// ---------------------------------------------------------------------

TEST(Search, InvalidConfigsAreRejected)
{
    {
        search::SearchConfig cfg = tinyConfig();
        cfg.pool = 0;
        EXPECT_THROW(cfg.validate(), ConfigError);
    }
    {
        search::SearchConfig cfg = tinyConfig();
        cfg.workloads = {"nope"};
        EXPECT_THROW(cfg.validate(), ConfigError);
    }
    {
        search::SearchConfig cfg = tinyConfig();
        cfg.traceWarmup = cfg.traceBranches;
        EXPECT_THROW(cfg.validate(), ConfigError);
    }
    {
        search::SearchConfig cfg = tinyConfig();
        cfg.ridgeLambda = -1.0;
        EXPECT_THROW(cfg.validate(), ConfigError);
    }
    {
        search::SearchConfig cfg = tinyConfig();
        cfg.seedEvals = 1;
        EXPECT_THROW(cfg.validate(), ConfigError);
    }
}

// ---------------------------------------------------------------------
// Surrogate unit behaviour
// ---------------------------------------------------------------------

TEST(Search, RidgeModelRecoversALinearTarget)
{
    // y = 3 + 2*x0 - x1, exactly representable: near-zero train RMSE
    // and accurate interpolation with a tiny lambda.
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 12; ++i) {
        const double x0 = i * 0.5, x1 = (i % 4) * 1.25;
        x.push_back({x0, x1});
        y.push_back(3.0 + 2.0 * x0 - x1);
    }
    search::RidgeModel m;
    m.fit(x, y, 1e-9);
    ASSERT_TRUE(m.fitted());
    EXPECT_LT(m.trainRmse(), 1e-6);
    EXPECT_NEAR(m.predict({2.0, 1.0}), 3.0 + 4.0 - 1.0, 1e-5);
}

TEST(Search, RidgeModelIsDeterministic)
{
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 20; ++i) {
        x.push_back({static_cast<double>(i % 5),
                     static_cast<double>((i * 7) % 11), i * 0.1});
        y.push_back(0.9 - 0.01 * (i % 3));
    }
    search::RidgeModel a, b;
    a.fit(x, y, 1.0);
    b.fit(x, y, 1.0);
    for (const auto& row : x)
        EXPECT_DOUBLE_EQ(a.predict(row), b.predict(row));
}
