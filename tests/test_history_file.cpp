#include <gtest/gtest.h>

#include "bpu/history_file.hpp"

namespace cobra::bpu {
namespace {

HistoryFileEntry
entryAt(Addr pc)
{
    HistoryFileEntry e;
    e.pc = pc;
    return e;
}

TEST(HistoryFile, EnqueueDequeueFifo)
{
    HistoryFile hf(4);
    EXPECT_TRUE(hf.empty());
    const FtqPos a = hf.enqueue(entryAt(0x100));
    const FtqPos b = hf.enqueue(entryAt(0x200));
    EXPECT_EQ(hf.size(), 2u);
    EXPECT_EQ(hf.headPos(), a);
    EXPECT_EQ(hf.head().pc, 0x100u);
    hf.dequeueHead();
    EXPECT_EQ(hf.headPos(), b);
    EXPECT_EQ(hf.head().pc, 0x200u);
}

TEST(HistoryFile, PositionsMonotonicNeverRecycled)
{
    HistoryFile hf(2);
    const FtqPos a = hf.enqueue(entryAt(0x1));
    hf.dequeueHead();
    const FtqPos b = hf.enqueue(entryAt(0x2));
    hf.dequeueHead();
    const FtqPos c = hf.enqueue(entryAt(0x3));
    EXPECT_LT(a, b);
    EXPECT_LT(b, c);
    EXPECT_FALSE(hf.contains(a));
    EXPECT_FALSE(hf.contains(b));
    EXPECT_TRUE(hf.contains(c));
}

TEST(HistoryFile, FullBackpressure)
{
    HistoryFile hf(3);
    hf.enqueue(entryAt(1));
    hf.enqueue(entryAt(2));
    hf.enqueue(entryAt(3));
    EXPECT_TRUE(hf.full());
    hf.dequeueHead();
    EXPECT_FALSE(hf.full());
}

TEST(HistoryFile, SquashAfterDropsYounger)
{
    HistoryFile hf(8);
    const FtqPos a = hf.enqueue(entryAt(0xa));
    const FtqPos b = hf.enqueue(entryAt(0xb));
    hf.enqueue(entryAt(0xc));
    hf.enqueue(entryAt(0xd));
    hf.squashAfter(b);
    EXPECT_EQ(hf.size(), 2u);
    EXPECT_TRUE(hf.contains(a));
    EXPECT_TRUE(hf.contains(b));
    EXPECT_EQ(hf.tailPos(), b + 1);
    // Space freed by the squash is reusable.
    const FtqPos e = hf.enqueue(entryAt(0xe));
    EXPECT_EQ(e, b + 1);
    EXPECT_EQ(hf.at(e).pc, 0xeu);
}

TEST(HistoryFile, SquashAll)
{
    HistoryFile hf(4);
    hf.enqueue(entryAt(1));
    hf.enqueue(entryAt(2));
    hf.squashAll();
    EXPECT_TRUE(hf.empty());
}

TEST(HistoryFile, RingWrapsCorrectly)
{
    HistoryFile hf(3);
    for (int round = 0; round < 10; ++round) {
        const FtqPos p = hf.enqueue(entryAt(0x1000 + round));
        EXPECT_EQ(hf.at(p).pc, 0x1000u + round);
        hf.dequeueHead();
    }
}

TEST(HistoryFile, EntryStateRoundTrip)
{
    HistoryFile hf(4);
    HistoryFileEntry e;
    e.pc = 0x1234;
    e.ghist = HistoryRegister(16);
    e.ghist.push(true);
    e.lhist = 0x55;
    e.brMask[2] = true;
    e.metas.resize(3);
    e.metas[1][0] = 0xdead;
    const FtqPos p = hf.enqueue(std::move(e));
    const HistoryFileEntry& r = hf.at(p);
    EXPECT_EQ(r.pc, 0x1234u);
    EXPECT_TRUE(r.ghist.bit(0));
    EXPECT_EQ(r.lhist, 0x55u);
    EXPECT_TRUE(r.brMask[2]);
    EXPECT_EQ(r.metas[1][0], 0xdeadu);
}

TEST(HistoryFile, StorageAccountsGhistAndMeta)
{
    HistoryFile hf(32);
    const auto small = hf.storageBits(16, 8, 4);
    const auto big = hf.storageBits(64, 128, 4);
    EXPECT_GT(big, small);
    EXPECT_EQ(big - small, 32u * (48 + 120));
}

} // namespace
} // namespace cobra::bpu
