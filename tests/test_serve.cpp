/**
 * @file
 * cobra_serve tests: the strict JSON parser, request validation, the
 * spool state machine, the write-ahead journal (including torn-tail
 * replay), the warm-state snapshot cache under poisoning, concurrent
 * WorkloadCache use, and the daemon end to end — healthy grids,
 * structured rejections, per-point timeout/retry records, priority
 * shedding, and crash recovery from a journaled mid-request state.
 */

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "guard/errors.hpp"
#include "program/workload.hpp"
#include "serve/daemon.hpp"
#include "serve/json.hpp"
#include "serve/journal.hpp"
#include "serve/request.hpp"
#include "serve/spool.hpp"
#include "serve/warm_cache.hpp"
#include "trace/replay.hpp"
#include "warp/snapshot.hpp"

using namespace cobra;
namespace fs = std::filesystem;

namespace {

/** A scratch directory under the system temp dir, wiped on entry. */
std::string
scratchDir(const char* leaf)
{
    const fs::path p = fs::temp_directory_path() / leaf;
    fs::remove_all(p);
    fs::create_directories(p);
    return p.string();
}

void
writeFile(const std::string& path, const std::string& text)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << text;
}

/** Submit a request document the way clients must: temp + rename. */
void
submit(const serve::Spool& spool, const std::string& fname,
       const std::string& text)
{
    const std::string dst = spool.incomingDir() + "/" + fname;
    writeFile(dst + ".tmp", text);
    fs::rename(dst + ".tmp", dst);
}

/** A minimal valid request body; extra fields splice in before "}". */
std::string
smallRequest(const std::string& id, const std::string& extra = "")
{
    return "{\"id\": \"" + id + "\", \"client\": \"test\", "
           "\"designs\": [\"tagel\"], \"workloads\": [\"leela\"], "
           "\"insts\": 8000, \"warmup\": 1000" +
           (extra.empty() ? "" : ", " + extra) + "}";
}

std::string
resultText(const serve::Spool& spool, const std::string& id)
{
    return serve::readFileText(spool.resultPath(id));
}

serve::ServeConfig
onceConfig(const std::string& root)
{
    serve::ServeConfig cfg;
    cfg.spoolRoot = root;
    cfg.jobs = 2;
    cfg.once = true;
    cfg.backoffBaseMs = 1; // Keep retry tests fast.
    return cfg;
}

std::size_t
runOnce(const serve::ServeConfig& cfg)
{
    std::atomic<bool> stop{false};
    serve::Daemon daemon(cfg);
    return daemon.run(stop);
}

} // namespace

// ---------------------------------------------------------------------
// JSON parser
// ---------------------------------------------------------------------

TEST(ServeJson, ParsesScalarsArraysAndObjects)
{
    const serve::Json doc = serve::Json::parse(
        "{\"a\": 1, \"b\": -2.5, \"c\": true, \"d\": null, "
        "\"e\": [1, 2, 3], \"f\": {\"g\": \"hi\"}}");
    EXPECT_EQ(doc.getU64("a", 0), 1u);
    EXPECT_DOUBLE_EQ(doc.getDouble("b", 0.0), -2.5);
    EXPECT_TRUE(doc.getBool("c", false));
    ASSERT_NE(doc.find("d"), nullptr);
    EXPECT_TRUE(doc.find("d")->isNull());
    ASSERT_NE(doc.find("e"), nullptr);
    EXPECT_EQ(doc.find("e")->asArray().size(), 3u);
    EXPECT_EQ(doc.find("f")->getString("g", ""), "hi");
}

TEST(ServeJson, IntegersSurviveUntruncated)
{
    const serve::Json doc =
        serve::Json::parse("{\"big\": 9007199254740993}");
    // 2^53 + 1 is not representable as a double; the integer view is.
    EXPECT_EQ(doc.getU64("big", 0), 9007199254740993ull);
}

TEST(ServeJson, StringEscapesDecode)
{
    const serve::Json doc = serve::Json::parse(
        "{\"s\": \"a\\\"b\\\\c\\n\\t\\u0041\"}");
    EXPECT_EQ(doc.getString("s", ""), "a\"b\\c\n\tA");
}

TEST(ServeJson, MalformedDocumentsAreStructuredErrors)
{
    const char* bad[] = {
        "",                        // empty
        "{",                       // unterminated object
        "[1, 2",                   // unterminated array
        "{\"a\": 1,}",             // trailing comma
        "{\"a\" 1}",               // missing colon
        "{\"a\": 1} extra",        // trailing content
        "{\"a\": 1, \"a\": 2}",    // duplicate key
        "\"unterminated",          // unterminated string
        "{\"a\": 01}",             // leading zero
        "nul",                     // truncated literal
        "{\"a\": \"\x01\"}",       // raw control character
    };
    for (const char* text : bad)
        EXPECT_THROW(serve::Json::parse(text), serve::JsonError)
            << "accepted: " << text;
}

TEST(ServeJson, NestingDepthIsBounded)
{
    std::string deep;
    for (int i = 0; i < 100; ++i)
        deep += "[";
    EXPECT_THROW(serve::Json::parse(deep), serve::JsonError);
}

TEST(ServeJson, TypeMismatchesThrowNotCrash)
{
    const serve::Json doc = serve::Json::parse("{\"a\": \"text\"}");
    EXPECT_THROW(doc.find("a")->asU64(), serve::JsonError);
    EXPECT_THROW(doc.find("a")->asArray(), serve::JsonError);
    EXPECT_THROW(serve::Json::parse("{\"a\": -1}").getU64("a", 0),
                 serve::JsonError);
}

// ---------------------------------------------------------------------
// Request parsing and validation
// ---------------------------------------------------------------------

TEST(ServeRequest, ParsesFullDocumentWithDefaults)
{
    const serve::SweepRequest r = serve::SweepRequest::parse(
        smallRequest("r1"), "fallback");
    EXPECT_EQ(r.id, "r1");
    EXPECT_EQ(r.client, "test");
    EXPECT_EQ(r.priority, 1);
    ASSERT_EQ(r.designs.size(), 1u);
    EXPECT_EQ(r.designs[0], sim::presetSpec(sim::Design::TageL));
    EXPECT_EQ(r.workloads, std::vector<std::string>{"leela"});
    EXPECT_EQ(r.insts, 8000u);
    EXPECT_EQ(r.warmup, 1000u);
    EXPECT_FALSE(r.warp);
    EXPECT_EQ(r.maxRetries, 2u);
}

TEST(ServeRequest, FallbackIdIsTheSpoolStem)
{
    const serve::SweepRequest r = serve::SweepRequest::parse(
        "{\"client\": \"c\", \"designs\": [\"b2\"], "
        "\"workloads\": [\"leela\"]}",
        "spool-stem");
    EXPECT_EQ(r.id, "spool-stem");
}

TEST(ServeRequest, GridIsWorkloadMajor)
{
    const serve::SweepRequest r = serve::SweepRequest::parse(
        "{\"id\": \"g\", \"client\": \"c\", "
        "\"designs\": [\"tagel\", \"b2\"], "
        "\"workloads\": [\"leela\", \"x264\"]}",
        "g");
    const auto pts = r.points();
    ASSERT_EQ(pts.size(), 4u);
    EXPECT_EQ(pts[0].label, "TAGE-L/leela");
    EXPECT_EQ(pts[1].label, "B2/leela");
    EXPECT_EQ(pts[2].label, "TAGE-L/x264");
    EXPECT_EQ(pts[3].label, "B2/x264");
}

TEST(ServeRequest, SemanticViolationsAreRejected)
{
    const char* bad[] = {
        "{\"client\": \"c\", \"designs\": [\"nope\"], "
        "\"workloads\": [\"leela\"]}", // unknown design
        "{\"client\": \"c\", \"designs\": [\"b2\"], "
        "\"workloads\": [\"nope\"]}", // unknown workload
        "{\"designs\": [\"b2\"], \"workloads\": [\"leela\"]}", // no client
        "{\"client\": \"c\", \"designs\": [], "
        "\"workloads\": [\"leela\"]}", // empty designs
        "{\"client\": \"c\", \"designs\": [\"b2\", \"b2\"], "
        "\"workloads\": [\"leela\"]}", // duplicate design
        "{\"client\": \"c\", \"designs\": [\"b2\"], "
        "\"workloads\": [\"leela\", \"leela\"]}", // duplicate workload
        "{\"client\": \"c\", \"designs\": [\"b2\"], "
        "\"workloads\": [\"leela\"], \"priority\": 7}", // bad priority
        "{\"client\": \"c\", \"designs\": [\"b2\"], "
        "\"workloads\": [\"leela\"], \"id\": \"../x\"}", // path escape
        "{\"client\": \"c\", \"designs\": [\"b2\"], "
        "\"workloads\": [\"leela\"], \"insts\": 1000, "
        "\"warmup\": 2000}", // warmup > insts (strict validate)
        "{\"client\": \"c\", \"designs\": [\"b2\"], "
        "\"workloads\": [\"leela\"], "
        "\"warp\": {\"intervals\": 0}}", // bad warp block
        "{\"client\": \"c\", \"designs\": [\"b2\"], "
        "\"workloads\": [\"leela\"], "
        "\"specialize\": \"maybe\"}", // unknown specialize mode
        "{\"client\": \"c\", \"designs\": [\"b2\"], "
        "\"workloads\": [\"leela\"], \"audit\": true, "
        "\"specialize\": \"require\"}", // require vs forced-generic audit
        "not json at all",
    };
    for (const char* text : bad)
        EXPECT_THROW(serve::SweepRequest::parse(text, "f"),
                     serve::RequestError)
            << "accepted: " << text;
}

TEST(ServeRequest, InlineDesignSpecResolvesLikeThePresetName)
{
    const std::string spec = sim::presetSpec("tagel").toJson();
    const serve::SweepRequest r = serve::SweepRequest::parse(
        "{\"id\": \"s\", \"client\": \"c\", \"design_spec\": " + spec +
            ", \"workloads\": [\"leela\"]}",
        "s");
    ASSERT_EQ(r.designs.size(), 1u);
    EXPECT_EQ(r.designs[0], sim::presetSpec(sim::Design::TageL));
    const auto pts = r.points();
    ASSERT_EQ(pts.size(), 1u);
    EXPECT_EQ(pts[0].label, "TAGE-L/leela");
}

TEST(ServeRequest, DesignSpecArrayConcatenatesAfterNames)
{
    const std::string spec = sim::presetSpec("b2").toJson();
    const serve::SweepRequest r = serve::SweepRequest::parse(
        "{\"id\": \"s\", \"client\": \"c\", "
        "\"designs\": [\"tagel\"], \"design_spec\": [" +
            spec + "], \"workloads\": [\"leela\"]}",
        "s");
    ASSERT_EQ(r.designs.size(), 2u);
    EXPECT_EQ(r.designs[0].name, "TAGE-L");
    EXPECT_EQ(r.designs[1].name, "B2");
}

TEST(ServeRequest, BadInlineSpecsAreRejected)
{
    const char* bad[] = {
        // Malformed spec document (unknown component kind).
        "{\"client\": \"c\", \"workloads\": [\"leela\"], "
        "\"design_spec\": {\"name\": \"x\", \"components\": "
        "[{\"id\": \"A\", \"kind\": \"nope\"}], \"tree\": \"A\"}}",
        // Duplicate name across designs and design_spec: points would
        // collide on their labels.
        "{\"client\": \"c\", \"workloads\": [\"leela\"], "
        "\"designs\": [\"b2\"], \"design_spec\": {\"name\": \"B2\", "
        "\"components\": [{\"id\": \"A\", \"kind\": \"bim\"}], "
        "\"tree\": \"A\"}}",
        // Empty design_spec array.
        "{\"client\": \"c\", \"workloads\": [\"leela\"], "
        "\"design_spec\": []}",
        // Neither designs nor design_spec.
        "{\"client\": \"c\", \"workloads\": [\"leela\"]}",
    };
    for (const char* text : bad)
        EXPECT_THROW(serve::SweepRequest::parse(text, "f"),
                     serve::RequestError)
            << "accepted: " << text;
}

TEST(ServeRequest, SearchKindParsesIntoOnePoint)
{
    const serve::SweepRequest r = serve::SweepRequest::parse(
        "{\"id\": \"s\", \"client\": \"c\", \"kind\": \"search\", "
        "\"workloads\": [\"mcf\", \"leela\"], "
        "\"search\": {\"seed\": 9, \"pool\": 6, \"budget_kb\": 512, "
        "\"seed_evals\": 3, \"survivors\": 4}}",
        "s");
    EXPECT_EQ(r.kind, "search");
    EXPECT_TRUE(r.designs.empty());
    EXPECT_EQ(r.searchCfg.seed, 9u);
    EXPECT_EQ(r.searchCfg.pool, 6u);
    EXPECT_EQ(r.searchCfg.budget.storageKb, 512u);
    ASSERT_EQ(r.searchCfg.workloads.size(), 2u);
    EXPECT_EQ(r.searchCfg.workloads[0], "mcf");
    const auto pts = r.points();
    ASSERT_EQ(pts.size(), 1u);
    EXPECT_EQ(pts[0].label, "search");
}

TEST(ServeRequest, SearchKindRejectsIncompatibleFields)
{
    const char* bad[] = {
        // Search requests explore designs themselves.
        "{\"client\": \"c\", \"kind\": \"search\", "
        "\"workloads\": [\"mcf\"], \"designs\": [\"b2\"]}",
        // No warp block (search runs its own warp tier).
        "{\"client\": \"c\", \"kind\": \"search\", "
        "\"workloads\": [\"mcf\"], \"warp\": {}}",
        // No trace replay.
        "{\"client\": \"c\", \"kind\": \"search\", "
        "\"workloads\": [\"mcf\"], \"trace\": \"x.cbtr\"}",
        // Invalid search block (pool 0).
        "{\"client\": \"c\", \"kind\": \"search\", "
        "\"workloads\": [\"mcf\"], \"search\": {\"pool\": 0}}",
        // A search block on a sweep request is a schema error.
        "{\"client\": \"c\", \"designs\": [\"b2\"], "
        "\"workloads\": [\"mcf\"], \"search\": {\"pool\": 4}}",
        // Unknown kind.
        "{\"client\": \"c\", \"kind\": \"census\", "
        "\"workloads\": [\"mcf\"], \"designs\": [\"b2\"]}",
    };
    for (const char* text : bad)
        EXPECT_THROW(serve::SweepRequest::parse(text, "f"),
                     serve::RequestError)
            << "accepted: " << text;
}

TEST(ServeRequest, SpecializeModeParsesAndValidatesAtAdmission)
{
    const serve::SweepRequest req = serve::SweepRequest::parse(
        "{\"client\": \"c\", \"designs\": [\"b2\"], "
        "\"workloads\": [\"leela\"], \"specialize\": \"require\"}",
        "f");
    EXPECT_EQ(req.specialize, sim::SpecializeMode::Require);
    EXPECT_EQ(req.makeConfig(req.designs[0]).specialize,
              sim::SpecializeMode::Require);

    const serve::SweepRequest off = serve::SweepRequest::parse(
        "{\"client\": \"c\", \"designs\": [\"refbig\"], "
        "\"workloads\": [\"leela\"], \"specialize\": \"off\"}",
        "f");
    EXPECT_EQ(off.specialize, sim::SpecializeMode::Off);

    // "auto" admits designs the fused loop cannot serve: it degrades
    // silently at run time instead of failing admission.
    const serve::SweepRequest aut = serve::SweepRequest::parse(
        "{\"client\": \"c\", \"designs\": [\"refbig\"], "
        "\"workloads\": [\"leela\"], \"specialize\": \"auto\"}",
        "f");
    EXPECT_EQ(aut.specialize, sim::SpecializeMode::Auto);
}

// ---------------------------------------------------------------------
// Spool state machine
// ---------------------------------------------------------------------

TEST(ServeSpool, LifecycleRenamesMoveTheDocument)
{
    serve::Spool spool(scratchDir("cobra_spool_lifecycle"));
    submit(spool, "r.json", "{}");
    ASSERT_EQ(spool.scanIncoming(),
              std::vector<std::string>{"r.json"});

    ASSERT_TRUE(spool.claim("r.json"));
    EXPECT_TRUE(spool.scanIncoming().empty());
    ASSERT_EQ(spool.scanActive(), std::vector<std::string>{"r.json"});

    spool.finish("r.json", /*ok=*/true);
    EXPECT_TRUE(spool.scanActive().empty());
    EXPECT_TRUE(fs::exists(spool.doneDir() + "/r.json"));

    submit(spool, "bad.json", "{");
    spool.reject("bad.json");
    EXPECT_TRUE(fs::exists(spool.failedDir() + "/bad.json"));

    EXPECT_FALSE(spool.claim("vanished.json"));
}

TEST(ServeSpool, ScansSkipTempAndForeignFiles)
{
    serve::Spool spool(scratchDir("cobra_spool_scan"));
    writeFile(spool.incomingDir() + "/half.json.tmp", "{");
    writeFile(spool.incomingDir() + "/notes.txt", "hi");
    submit(spool, "b.json", "{}");
    submit(spool, "a.json", "{}");
    EXPECT_EQ(spool.scanIncoming(),
              (std::vector<std::string>{"a.json", "b.json"}));
}

TEST(ServeSpool, AtomicWriteLeavesNoTemp)
{
    const std::string dir = scratchDir("cobra_spool_atomic");
    serve::writeFileAtomic(dir + "/out.json", "{\"x\": 1}\n");
    EXPECT_EQ(serve::readFileText(dir + "/out.json"), "{\"x\": 1}\n");
    EXPECT_FALSE(fs::exists(dir + "/out.json.tmp"));
}

// ---------------------------------------------------------------------
// Write-ahead journal
// ---------------------------------------------------------------------

TEST(ServeJournal, AppendsReplayInOrder)
{
    const std::string dir = scratchDir("cobra_journal_basic");
    const std::string path = dir + "/journal.log";
    {
        serve::Journal j(path);
        j.append(serve::Journal::acceptLine("r1", "ci", 2, 4));
        j.append(serve::Journal::pointLine("r1", 0, "ok", "", "", 1,
                                           "FRAG"));
        j.append(serve::Journal::pointLine(
            "r1", 1, "failed", "deadlock", "no progress", 3, ""));
        j.append(serve::Journal::doneLine("r1", "failed"));
    }
    std::vector<std::string> evs;
    std::vector<std::string> extras;
    const std::size_t n = serve::Journal::replay(
        path, [&](const serve::Json& rec) {
            evs.push_back(rec.getString("ev", ""));
            extras.push_back(rec.getString("fragment", "") +
                             rec.getString("error_class", ""));
        });
    EXPECT_EQ(n, 4u);
    EXPECT_EQ(evs, (std::vector<std::string>{"accept", "point",
                                             "point", "done"}));
    EXPECT_EQ(extras[1], "FRAG");
    EXPECT_EQ(extras[2], "deadlock");
}

TEST(ServeJournal, TornTailStopsReplayWithoutError)
{
    const std::string dir = scratchDir("cobra_journal_torn");
    const std::string path = dir + "/journal.log";
    {
        serve::Journal j(path);
        j.append(serve::Journal::acceptLine("r1", "ci", 1, 1));
        j.append(serve::Journal::pointLine("r1", 0, "ok", "", "", 1,
                                           "FRAG"));
    }
    // Simulate a crash mid-append: cut the last record short.
    std::string text = serve::readFileText(path);
    writeFile(path, text.substr(0, text.size() - 20));

    std::size_t points = 0;
    const std::size_t n = serve::Journal::replay(
        path, [&](const serve::Json& rec) {
            if (rec.getString("ev", "") == "point")
                ++points;
        });
    EXPECT_EQ(n, 1u); // The accept survived; the torn point did not.
    EXPECT_EQ(points, 0u);
    EXPECT_EQ(serve::Journal::replay(dir + "/absent.log",
                                     [](const serve::Json&) {}),
              0u);
}

TEST(ServeJournal, CheckpointAtomicallyRewrites)
{
    const std::string dir = scratchDir("cobra_journal_ckpt");
    const std::string path = dir + "/journal.log";
    serve::Journal j(path);
    for (int i = 0; i < 10; ++i)
        j.append(serve::Journal::acceptLine("old", "c", 0, 1));
    j.checkpoint({serve::Journal::acceptLine("kept", "c", 1, 2)});
    j.append(serve::Journal::doneLine("kept", "ok"));

    std::vector<std::string> ids;
    serve::Journal::replay(path, [&](const serve::Json& rec) {
        ids.push_back(rec.getString("id", ""));
    });
    EXPECT_EQ(ids, (std::vector<std::string>{"kept", "kept"}));
    EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(ServeJournal, FragmentsWithNewlinesStayLineOriented)
{
    const std::string dir = scratchDir("cobra_journal_frag");
    const std::string path = dir + "/journal.log";
    const std::string frag = "    {\n      \"label\": \"a/b\"\n    }";
    {
        serve::Journal j(path);
        j.append(serve::Journal::pointLine("r", 0, "ok", "", "", 1,
                                           frag));
        j.append(serve::Journal::doneLine("r", "ok"));
    }
    std::string recovered;
    const std::size_t n = serve::Journal::replay(
        path, [&](const serve::Json& rec) {
            if (rec.getString("ev", "") == "point")
                recovered = rec.getString("fragment", "");
        });
    EXPECT_EQ(n, 2u); // The embedded newlines did not split records.
    EXPECT_EQ(recovered, frag);
}

// ---------------------------------------------------------------------
// Warm-state cache poisoning
// ---------------------------------------------------------------------

TEST(ServeWarmCache, RoundTripsAndCountsHits)
{
    serve::WarmCache cache(scratchDir("cobra_warm_rt"));
    warp::Snapshot snap;
    snap.fingerprint = 0xF00D;
    snap.cycle = 123;
    snap.insts = 456;
    snap.payload = {1, 2, 3, 4};

    const std::string key = cache.keyPath("leela", 0xABCD, 4, 2);
    warp::Snapshot out;
    EXPECT_FALSE(cache.lookup(key, out)); // miss
    cache.store(key, snap);
    ASSERT_TRUE(cache.lookup(key, out)); // hit
    EXPECT_EQ(out.fingerprint, 0xF00Du);
    EXPECT_EQ(out.insts, 456u);
    EXPECT_EQ(out.payload, snap.payload);
    EXPECT_EQ(cache.stats().get("hits"), 1u);
    EXPECT_EQ(cache.stats().get("misses"), 1u);
    EXPECT_EQ(cache.stats().get("stores"), 1u);
}

TEST(ServeWarmCache, KeysSeparateWorkloadConfigAndSlot)
{
    serve::WarmCache cache(scratchDir("cobra_warm_keys"));
    const std::string a = cache.keyPath("leela", 1, 4, 0);
    EXPECT_NE(a, cache.keyPath("x264", 1, 4, 0));
    EXPECT_NE(a, cache.keyPath("leela", 2, 4, 0));
    EXPECT_NE(a, cache.keyPath("leela", 1, 8, 0));
    EXPECT_NE(a, cache.keyPath("leela", 1, 4, 1));
}

TEST(ServeWarmCache, TruncatedEntryIsEvictedAsAMiss)
{
    serve::WarmCache cache(scratchDir("cobra_warm_trunc"));
    warp::Snapshot snap;
    snap.payload.assign(64, 7);
    const std::string key = cache.keyPath("leela", 9, 2, 0);
    cache.store(key, snap);

    std::string bytes = serve::readFileText(key);
    writeFile(key, bytes.substr(0, bytes.size() / 2));

    warp::Snapshot out;
    EXPECT_FALSE(cache.lookup(key, out));
    EXPECT_EQ(cache.stats().get("rejected"), 1u);
    EXPECT_FALSE(fs::exists(key)); // evicted for regeneration
    EXPECT_FALSE(cache.lookup(key, out)); // now a plain miss
    EXPECT_EQ(cache.stats().get("misses"), 1u);
}

TEST(ServeWarmCache, BitFlippedEntryIsEvictedAsAMiss)
{
    serve::WarmCache cache(scratchDir("cobra_warm_flip"));
    warp::Snapshot snap;
    snap.payload.assign(64, 7);
    const std::string key = cache.keyPath("leela", 9, 2, 1);
    cache.store(key, snap);

    std::string bytes = serve::readFileText(key);
    bytes[bytes.size() - 3] ^= 0x40; // corrupt the payload tail
    writeFile(key, bytes);

    warp::Snapshot out;
    EXPECT_FALSE(cache.lookup(key, out));
    EXPECT_EQ(cache.stats().get("rejected"), 1u);
    EXPECT_FALSE(fs::exists(key));
}

// ---------------------------------------------------------------------
// Concurrent workload-cache use
// ---------------------------------------------------------------------

TEST(ServeWorkloadCache, ConcurrentGetsShareOnePerName)
{
    prog::WorkloadCache cache;
    const auto names = prog::WorkloadLibrary::all();
    ASSERT_GE(names.size(), 2u);

    // Hammer the cache from many threads; every thread must observe
    // the same Program address per name (one build, shared borrow).
    std::vector<std::vector<const prog::Program*>> seen(8);
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < seen.size(); ++t) {
        threads.emplace_back([&, t] {
            for (int rep = 0; rep < 4; ++rep)
                for (const auto& n : names)
                    seen[t].push_back(&cache.get(n));
        });
    }
    for (auto& th : threads)
        th.join();
    for (std::size_t t = 1; t < seen.size(); ++t)
        EXPECT_EQ(seen[t], seen[0]);
    EXPECT_EQ(cache.size(), names.size());
}

// ---------------------------------------------------------------------
// Daemon end to end
// ---------------------------------------------------------------------

TEST(ServeDaemon, HealthyGridRetiresOk)
{
    const std::string root = scratchDir("cobra_serve_ok");
    serve::Spool spool(root);
    submit(spool, "grid.json",
           "{\"id\": \"grid\", \"client\": \"ci\", "
           "\"designs\": [\"tagel\", \"b2\"], "
           "\"workloads\": [\"leela\"], "
           "\"insts\": 8000, \"warmup\": 1000}");

    EXPECT_EQ(runOnce(onceConfig(root)), 1u);
    EXPECT_TRUE(fs::exists(spool.doneDir() + "/grid.json"));

    const serve::Json doc = serve::Json::parse(resultText(spool,
                                                          "grid"));
    EXPECT_EQ(doc.getString("tool", ""), "cobra_serve");
    EXPECT_EQ(doc.getString("status", ""), "ok");
    const auto& pts = doc.find("points")->asArray();
    ASSERT_EQ(pts.size(), 2u);
    EXPECT_EQ(pts[0].getString("label", ""), "TAGE-L/leela");
    EXPECT_EQ(pts[0].getString("status", ""), "ok");
    EXPECT_EQ(pts[0].getU64("attempts", 0), 1u);
    EXPECT_GT(pts[0].getU64("insts", 0), 0u);
    EXPECT_GT(pts[0].getDouble("ipc", 0.0), 0.0);
    EXPECT_EQ(pts[1].getString("status", ""), "ok");

    // The health document reflects the retire.
    const serve::Json status =
        serve::Json::parse(serve::readFileText(spool.statusPath()));
    EXPECT_EQ(status.getString("state", ""), "stopped");
    EXPECT_EQ(status.getU64("retired", 0), 1u);
}

TEST(ServeDaemon, InvalidRequestBecomesStructuredRejection)
{
    const std::string root = scratchDir("cobra_serve_invalid");
    serve::Spool spool(root);
    submit(spool, "broken.json", "this is not json");
    submit(spool, "unknown.json",
           "{\"client\": \"ci\", \"designs\": [\"warpcore\"], "
           "\"workloads\": [\"leela\"]}");

    EXPECT_EQ(runOnce(onceConfig(root)), 0u);
    EXPECT_TRUE(fs::exists(spool.failedDir() + "/broken.json"));
    EXPECT_TRUE(fs::exists(spool.failedDir() + "/unknown.json"));

    const serve::Json doc =
        serve::Json::parse(resultText(spool, "broken"));
    EXPECT_EQ(doc.getString("status", ""), "rejected");
    EXPECT_EQ(doc.getString("reason", ""), "invalid_request");
    EXPECT_NE(doc.getString("detail", ""), "");

    const serve::Json doc2 =
        serve::Json::parse(resultText(spool, "unknown"));
    EXPECT_EQ(doc2.getString("reason", ""), "invalid_request");
    EXPECT_NE(doc2.getString("detail", "").find("design"),
              std::string::npos);
}

TEST(ServeDaemon, TimeoutPointFailsWithRetriesRecorded)
{
    const std::string root = scratchDir("cobra_serve_timeout");
    serve::Spool spool(root);
    submit(spool, "slow.json",
           "{\"id\": \"slow\", \"client\": \"ci\", "
           "\"designs\": [\"tagel\"], \"workloads\": [\"leela\"], "
           "\"insts\": 400000, \"warmup\": 1000, "
           "\"point_timeout_ms\": 1, \"max_retries\": 1}");

    serve::ServeConfig cfg = onceConfig(root);
    cfg.watchdogSliceCycles = 500; // Check the deadline early.
    EXPECT_EQ(runOnce(cfg), 1u);
    EXPECT_TRUE(fs::exists(spool.failedDir() + "/slow.json"));

    const serve::Json doc = serve::Json::parse(resultText(spool,
                                                          "slow"));
    EXPECT_EQ(doc.getString("status", ""), "failed");
    const auto& pts = doc.find("points")->asArray();
    ASSERT_EQ(pts.size(), 1u);
    EXPECT_EQ(pts[0].getString("status", ""), "failed");
    EXPECT_EQ(pts[0].getString("error_class", ""), "timeout");
    // Transient class: one retry consumed before the final record.
    EXPECT_EQ(pts[0].getU64("attempts", 0), 2u);
}

TEST(ServeDaemon, AdmissionControlQuotaAndSize)
{
    const std::string root = scratchDir("cobra_serve_admission");
    serve::Spool spool(root);
    submit(spool, "big.json",
           "{\"id\": \"big\", \"client\": \"ci\", "
           "\"designs\": [\"tagel\", \"b2\"], "
           "\"workloads\": [\"leela\", \"x264\"], "
           "\"insts\": 8000, \"warmup\": 1000}");
    submit(spool, "ok1.json", smallRequest("ok1"));
    submit(spool, "ok2.json", smallRequest("ok2"));

    serve::ServeConfig cfg = onceConfig(root);
    cfg.maxPointsPerRequest = 2; // "big" (4 points) is too large.
    cfg.maxPointsPerClient = 1;  // "ok1" fits; "ok2" busts the quota.
    EXPECT_EQ(runOnce(cfg), 1u);

    const serve::Json big = serve::Json::parse(resultText(spool,
                                                          "big"));
    EXPECT_EQ(big.getString("reason", ""), "too_large");
    EXPECT_EQ(big.find("points")->asArray().size(), 4u);
    EXPECT_EQ(big.find("points")->asArray()[0].getString("status", ""),
              "rejected");

    EXPECT_EQ(serve::Json::parse(resultText(spool, "ok1"))
                  .getString("status", ""),
              "ok");
    EXPECT_EQ(serve::Json::parse(resultText(spool, "ok2"))
                  .getString("reason", ""),
              "quota");
}

TEST(ServeDaemon, FullQueueShedsLowestPriority)
{
    const std::string root = scratchDir("cobra_serve_shed");
    serve::Spool spool(root);
    // Scanned in name order: a (prio 1) fills the queue, b (prio 1)
    // cannot displace it, c (prio 3) sheds a.
    submit(spool, "a.json", smallRequest("a", "\"priority\": 1"));
    submit(spool, "b.json", smallRequest("b", "\"priority\": 1"));
    submit(spool, "c.json", smallRequest("c", "\"priority\": 3"));

    serve::ServeConfig cfg = onceConfig(root);
    cfg.maxQueue = 1;
    EXPECT_EQ(runOnce(cfg), 1u);

    EXPECT_EQ(serve::Json::parse(resultText(spool, "a"))
                  .getString("reason", ""),
              "shed");
    EXPECT_EQ(serve::Json::parse(resultText(spool, "b"))
                  .getString("reason", ""),
              "queue_full");
    EXPECT_EQ(serve::Json::parse(resultText(spool, "c"))
                  .getString("status", ""),
              "ok");
    EXPECT_TRUE(fs::exists(spool.failedDir() + "/a.json"));
    EXPECT_TRUE(fs::exists(spool.failedDir() + "/b.json"));
    EXPECT_TRUE(fs::exists(spool.doneDir() + "/c.json"));
}

TEST(ServeDaemon, RecoveryReplaysJournaledPointsWithoutRerun)
{
    const std::string root = scratchDir("cobra_serve_recover");
    serve::Spool spool(root);

    // Manufacture a crashed daemon's state: a claimed two-point
    // request in active/ whose first point already journaled. The
    // sentinel fragment is bytes a re-run could never produce.
    const std::string frag =
        "    {\n      \"label\": \"TAGE-L/leela\",\n"
        "      \"status\": \"ok\",\n      \"attempts\": 1,\n"
        "      \"insts\": 424242,\n      \"cycles\": 9,\n"
        "      \"ipc\": 1.0,\n      \"mpki\": 1.0,\n"
        "      \"accuracy\": 1.0,\n"
        "      \"wall_seconds\": 0.125\n    }";
    writeFile(spool.activeDir() + "/crashed.json",
              "{\"id\": \"crashed\", \"client\": \"ci\", "
              "\"designs\": [\"tagel\", \"b2\"], "
              "\"workloads\": [\"leela\"], "
              "\"insts\": 8000, \"warmup\": 1000}");
    {
        serve::Journal j(spool.journalPath());
        j.append(serve::Journal::acceptLine("crashed", "ci", 1, 2));
        j.append(serve::Journal::pointLine("crashed", 0, "ok", "", "",
                                           1, frag));
    }

    EXPECT_EQ(runOnce(onceConfig(root)), 1u);
    EXPECT_TRUE(fs::exists(spool.doneDir() + "/crashed.json"));

    const std::string text = resultText(spool, "crashed");
    // The journaled fragment was republished verbatim (424242 insts
    // prove point 0 was not re-simulated)...
    EXPECT_NE(text.find("424242"), std::string::npos);
    const serve::Json doc = serve::Json::parse(text);
    EXPECT_EQ(doc.getString("status", ""), "ok");
    const auto& pts = doc.find("points")->asArray();
    ASSERT_EQ(pts.size(), 2u);
    // ...while point 1 genuinely ran.
    EXPECT_EQ(pts[1].getString("label", ""), "B2/leela");
    EXPECT_EQ(pts[1].getU64("insts", 0), 8000u);
}

TEST(ServeDaemon, RecoveryRetiresDoneRequestsWithoutRerun)
{
    const std::string root = scratchDir("cobra_serve_recover_done");
    serve::Spool spool(root);

    // Crash window: result published and done journaled, but the
    // retire rename never happened.
    writeFile(spool.activeDir() + "/finished.json",
              smallRequest("finished"));
    spool.writeResult("finished", "{\"sentinel\": true}\n");
    {
        serve::Journal j(spool.journalPath());
        j.append(serve::Journal::acceptLine("finished", "test", 1, 1));
        j.append(serve::Journal::doneLine("finished", "ok"));
    }

    EXPECT_EQ(runOnce(onceConfig(root)), 1u);
    EXPECT_TRUE(fs::exists(spool.doneDir() + "/finished.json"));
    // The published result was NOT overwritten by a re-run.
    EXPECT_EQ(resultText(spool, "finished"), "{\"sentinel\": true}\n");
}

TEST(ServeDaemon, WarpRequestsReuseWarmStateBitIdentically)
{
    const std::string root = scratchDir("cobra_serve_warm_e2e");
    serve::Spool spool(root);
    const std::string body =
        "\"client\": \"ci\", \"designs\": [\"b2\"], "
        "\"workloads\": [\"leela\"], "
        "\"insts\": 30000, \"warmup\": 2000, "
        "\"warp\": {\"intervals\": 2, \"warmup_cycles\": 2000}";
    submit(spool, "cold.json", "{\"id\": \"cold\", " + body + "}");

    serve::ServeConfig cfg = onceConfig(root);
    EXPECT_EQ(runOnce(cfg), 1u);
    submit(spool, "warm.json", "{\"id\": \"warm\", " + body + "}");
    EXPECT_EQ(runOnce(cfg), 1u);

    const serve::Json cold = serve::Json::parse(resultText(spool,
                                                           "cold"));
    const serve::Json warm = serve::Json::parse(resultText(spool,
                                                           "warm"));
    const serve::Json& cp = cold.find("points")->asArray()[0];
    const serve::Json& wp = warm.find("points")->asArray()[0];
    ASSERT_EQ(cp.getString("status", ""), "ok");
    ASSERT_EQ(wp.getString("status", ""), "ok");

    const serve::Json* cw = cp.find("warp");
    const serve::Json* ww = wp.find("warp");
    ASSERT_NE(cw, nullptr);
    ASSERT_NE(ww, nullptr);
    EXPECT_EQ(cw->getU64("warm_hits", 99), 0u);
    EXPECT_GT(cw->getU64("ff_insts", 0), 0u);
    EXPECT_EQ(ww->getU64("warm_hits", 0), 2u); // both intervals hit
    EXPECT_EQ(ww->getU64("ff_insts", 99), 0u); // fast-forward skipped

    // Warm-path estimates are bit-identical to the cold run.
    EXPECT_EQ(cp.getU64("cycles", 1), wp.getU64("cycles", 2));
    EXPECT_EQ(cp.getU64("insts", 1), wp.getU64("insts", 2));
    EXPECT_EQ(cp.getU64("cond_mispredicts", 1),
              wp.getU64("cond_mispredicts", 2));
}

TEST(ServeDaemon, PoisonedWarmCacheRegeneratesCleanly)
{
    const std::string root = scratchDir("cobra_serve_warm_poison");
    serve::Spool spool(root);
    const std::string body =
        "\"client\": \"ci\", \"designs\": [\"b2\"], "
        "\"workloads\": [\"leela\"], "
        "\"insts\": 30000, \"warmup\": 2000, "
        "\"warp\": {\"intervals\": 2, \"warmup_cycles\": 2000}";
    submit(spool, "cold.json", "{\"id\": \"cold\", " + body + "}");
    EXPECT_EQ(runOnce(onceConfig(root)), 1u);

    // Corrupt every cached snapshot.
    std::size_t poisoned = 0;
    for (const auto& e : fs::directory_iterator(spool.warmDir())) {
        std::string bytes = serve::readFileText(e.path().string());
        bytes[bytes.size() / 2] ^= 0x01;
        writeFile(e.path().string(), bytes);
        ++poisoned;
    }
    ASSERT_EQ(poisoned, 2u);

    submit(spool, "again.json", "{\"id\": \"again\", " + body + "}");
    EXPECT_EQ(runOnce(onceConfig(root)), 1u);

    const serve::Json cold = serve::Json::parse(resultText(spool,
                                                           "cold"));
    const serve::Json again = serve::Json::parse(resultText(spool,
                                                            "again"));
    const serve::Json& cp = cold.find("points")->asArray()[0];
    const serve::Json& ap = again.find("points")->asArray()[0];
    ASSERT_EQ(ap.getString("status", ""), "ok");
    // Poison forced a cold pass (no warm hits), and the regenerated
    // run still produced the identical estimate.
    EXPECT_EQ(ap.find("warp")->getU64("warm_hits", 99), 0u);
    EXPECT_GT(ap.find("warp")->getU64("ff_insts", 0), 0u);
    EXPECT_EQ(cp.getU64("cycles", 1), ap.getU64("cycles", 2));
}

// ---------------------------------------------------------------------
// Replay traces through the service
// ---------------------------------------------------------------------

TEST(ServeDaemon, TraceRequestReplaysBitIdenticallyToExecute)
{
    const std::string root = scratchDir("cobra_serve_trace");
    serve::Spool spool(root);

    // Capture the workload the request will replay.
    prog::WorkloadCache programs;
    const std::string tracePath = root + "/leela.cbtr";
    trace::captureTrace(programs.get("leela"), tracePath, 10'000);

    const std::string opts =
        "\"designs\": [\"tagel\", \"b2\"], "
        "\"workloads\": [\"leela\"], "
        "\"insts\": 8000, \"warmup\": 1000";
    submit(spool, "exec.json",
           "{\"id\": \"exec\", \"client\": \"ci\", " + opts + "}");
    submit(spool, "replay.json",
           "{\"id\": \"replay\", \"client\": \"ci\", " + opts +
               ", \"trace\": \"" + tracePath + "\"}");
    EXPECT_EQ(runOnce(onceConfig(root)), 2u);

    const serve::Json execDoc =
        serve::Json::parse(resultText(spool, "exec"));
    const serve::Json replayDoc =
        serve::Json::parse(resultText(spool, "replay"));
    const auto& ep = execDoc.find("points")->asArray();
    const auto& rp = replayDoc.find("points")->asArray();
    ASSERT_EQ(ep.size(), 2u);
    ASSERT_EQ(rp.size(), 2u);
    for (std::size_t i = 0; i < 2; ++i) {
        ASSERT_EQ(rp[i].getString("status", ""), "ok");
        EXPECT_EQ(rp[i].getU64("cycles", 1), ep[i].getU64("cycles", 2))
            << rp[i].getString("label", "");
        EXPECT_EQ(rp[i].getU64("insts", 1), ep[i].getU64("insts", 2));
        EXPECT_EQ(rp[i].getU64("cond_mispredicts", 1),
                  ep[i].getU64("cond_mispredicts", 2));
    }
}

TEST(ServeDaemon, BadTraceRequestsAreRejectedAtAdmission)
{
    const std::string root = scratchDir("cobra_serve_trace_bad");
    serve::Spool spool(root);

    prog::WorkloadCache programs;
    const std::string tracePath = root + "/leela.cbtr";
    trace::captureTrace(programs.get("leela"), tracePath, 6'000);

    // Corrupt copy: flip one payload byte.
    const std::string corrupt = root + "/corrupt.cbtr";
    {
        std::string bytes = serve::readFileText(tracePath);
        bytes[200] ^= 0x20;
        writeFile(corrupt, bytes);
    }

    const std::string head =
        "\"client\": \"ci\", \"designs\": [\"b2\"], "
        "\"insts\": 4000, \"warmup\": 1000, ";
    // Missing file, corrupt file, wrong workload, budget overrun:
    // all must become invalid_trace rejection documents.
    submit(spool, "gone.json",
           "{\"id\": \"gone\", " + head +
               "\"workloads\": [\"leela\"], \"trace\": \"" + root +
               "/absent.cbtr\"}");
    submit(spool, "corrupt.json",
           "{\"id\": \"corrupt\", " + head +
               "\"workloads\": [\"leela\"], \"trace\": \"" + corrupt +
               "\"}");
    submit(spool, "mismatch.json",
           "{\"id\": \"mismatch\", " + head +
               "\"workloads\": [\"x264\"], \"trace\": \"" + tracePath +
               "\"}");
    submit(spool, "overrun.json",
           "{\"id\": \"overrun\", \"client\": \"ci\", "
           "\"designs\": [\"b2\"], \"workloads\": [\"leela\"], "
           "\"insts\": 400000, \"warmup\": 1000, \"trace\": \"" +
               tracePath + "\"}");
    EXPECT_EQ(runOnce(onceConfig(root)), 0u);

    for (const char* id : {"gone", "corrupt", "mismatch", "overrun"}) {
        const serve::Json doc =
            serve::Json::parse(resultText(spool, id));
        EXPECT_EQ(doc.getString("status", ""), "rejected") << id;
        EXPECT_EQ(doc.getString("reason", ""), "invalid_trace") << id;
        EXPECT_NE(doc.getString("detail", ""), "") << id;
    }

    // A trace with more than one workload is a parse-level rejection.
    EXPECT_THROW(serve::SweepRequest::parse(
                     "{\"client\": \"c\", \"designs\": [\"b2\"], "
                     "\"workloads\": [\"leela\", \"x264\"], "
                     "\"trace\": \"t.cbtr\"}",
                     "f"),
                 serve::RequestError);
}
