#include <gtest/gtest.h>

#include "common/folded_history.hpp"
#include "common/random.hpp"

namespace cobra {
namespace {

TEST(HistoryRegister, PushShiftsBitZero)
{
    HistoryRegister h(8);
    h.push(true);
    EXPECT_TRUE(h.bit(0));
    h.push(false);
    EXPECT_FALSE(h.bit(0));
    EXPECT_TRUE(h.bit(1));
}

TEST(HistoryRegister, LowPacksRecentBits)
{
    HistoryRegister h(16);
    // Push 1,0,1,1 -> low4 = 0b1101 (bit0 = most recent = 1).
    h.push(true);
    h.push(false);
    h.push(true);
    h.push(true);
    // bit0 = 1 (last push), bit1 = 1, bit2 = 0, bit3 = 1.
    EXPECT_TRUE(h.bit(0));
    EXPECT_TRUE(h.bit(1));
    EXPECT_FALSE(h.bit(2));
    EXPECT_TRUE(h.bit(3));
    EXPECT_EQ(h.low(4), 0b1011u);
}

TEST(HistoryRegister, LengthMasking)
{
    HistoryRegister h(5);
    for (int i = 0; i < 100; ++i)
        h.push(true);
    EXPECT_EQ(h.low(5), 0b11111u);
    // Bits beyond the configured length do not exist.
    EXPECT_EQ(h.snapshot().size(), 1u);
    EXPECT_EQ(h.snapshot()[0], 0b11111u);
}

TEST(HistoryRegister, MultiWordCarry)
{
    HistoryRegister h(130);
    h.push(true);
    for (int i = 0; i < 128; ++i)
        h.push(false);
    EXPECT_TRUE(h.bit(128));
    EXPECT_FALSE(h.bit(127));
    EXPECT_FALSE(h.bit(0));
}

TEST(HistoryRegister, SnapshotRestore)
{
    HistoryRegister h(64);
    Rng rng(7);
    for (int i = 0; i < 40; ++i)
        h.push(rng.chance(0.5));
    const auto snap = h.snapshot();
    HistoryRegister h2 = h;
    for (int i = 0; i < 17; ++i)
        h.push(rng.chance(0.5));
    EXPECT_FALSE(h == h2);
    h.restore(snap);
    EXPECT_TRUE(h == h2);
}

TEST(FoldedHistory, IncrementalMatchesRecompute)
{
    // Drive a long register and an incremental fold together; the
    // recompute-from-register result must equal the incremental state.
    const unsigned histLen = 17;
    const unsigned foldedLen = 7;
    HistoryRegister h(64);
    FoldedHistory f(histLen, foldedLen);
    Rng rng(99);
    for (int i = 0; i < 500; ++i) {
        const bool oldest = histLen - 1 < h.length() &&
                            h.bit(histLen - 1);
        const bool newest = rng.chance(0.5);
        h.push(newest);
        f.push(newest, oldest);

        FoldedHistory check(histLen, foldedLen);
        check.recompute(h);
        ASSERT_EQ(check.value(), f.value()) << "at step " << i;
    }
}

TEST(FoldedHistory, OutputWidthRespected)
{
    FoldedHistory f(40, 9);
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
        f.push(rng.chance(0.5), rng.chance(0.5));
        EXPECT_LE(f.value(), maskBits(9));
    }
}

TEST(FoldedHistory, DistinctHistoriesDistinctFolds)
{
    // Two registers differing in one recent bit fold differently
    // (almost surely for these sizes).
    HistoryRegister a(64), b(64);
    for (int i = 0; i < 20; ++i) {
        a.push(i % 3 == 0);
        b.push(i % 3 == 0);
    }
    a.push(true);
    b.push(false);
    FoldedHistory fa(20, 8), fb(20, 8);
    fa.recompute(a);
    fb.recompute(b);
    EXPECT_NE(fa.value(), fb.value());
}

} // namespace
} // namespace cobra
