#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hpp"
#include "common/table.hpp"

namespace cobra {
namespace {

TEST(Counter, IncrementAndAdd)
{
    Counter c;
    ++c;
    c += 10;
    EXPECT_EQ(c.value(), 11u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(4);
    h.sample(0);
    h.sample(1);
    h.sample(1);
    h.sample(99); // clamps to last bucket
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.samples(), 4u);
}

TEST(Histogram, Mean)
{
    Histogram h(16);
    h.sample(2);
    h.sample(4);
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST(StatGroup, RegisteredHandles)
{
    StatGroup g("grp");
    Stat<Counter> a{g, "a", "events of kind a"};
    Stat<Counter> b{g, "b", "events of kind b"};
    ++a;
    b += 5;
    EXPECT_EQ(g.get("a"), 1u);
    EXPECT_EQ(g.get("b"), 5u);
    EXPECT_EQ(g.get("missing"), 0u);
    std::ostringstream oss;
    g.dump(oss);
    EXPECT_NE(oss.str().find("grp.a = 1"), std::string::npos);
}

TEST(StatGroup, KeepsRegistrationOrderAndMetadata)
{
    StatGroup g("grp");
    Stat<Counter> z{g, "z", "last letter first"};
    Stat<Histogram> h{g, "h", "a histogram", 4};
    h.sample(2);
    ASSERT_EQ(g.entries().size(), 2u);
    EXPECT_EQ(g.entries()[0].name, "z");
    EXPECT_EQ(g.entries()[0].description, "last letter first");
    EXPECT_NE(g.entries()[0].counter, nullptr);
    EXPECT_EQ(g.entries()[1].name, "h");
    EXPECT_NE(g.entries()[1].histogram, nullptr);
    EXPECT_EQ(g.entries()[1].histogram->samples(), 1u);
}

TEST(StatGroup, RejectsDuplicateNames)
{
    StatGroup g("grp");
    Stat<Counter> a{g, "a", "first registration"};
    EXPECT_THROW((Stat<Counter>{g, "a", "second registration"}),
                 std::invalid_argument);
}

TEST(StatGroup, ResetClearsEveryHandle)
{
    StatGroup g("grp");
    Stat<Counter> a{g, "a", "counter"};
    Stat<Histogram> h{g, "h", "histogram", 4};
    a += 3;
    h.sample(1);
    g.reset();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(h.samples(), 0u);
}

TEST(Means, Harmonic)
{
    EXPECT_DOUBLE_EQ(harmonicMean({1.0, 1.0}), 1.0);
    EXPECT_NEAR(harmonicMean({1.0, 2.0}), 4.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(harmonicMean({}), 0.0);
    EXPECT_DOUBLE_EQ(harmonicMean({1.0, 0.0}), 0.0);
}

TEST(Means, Arithmetic)
{
    EXPECT_DOUBLE_EQ(arithmeticMean({2.0, 4.0}), 3.0);
    EXPECT_DOUBLE_EQ(arithmeticMean({}), 0.0);
}

TEST(Means, Geometric)
{
    EXPECT_NEAR(geometricMean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_DOUBLE_EQ(geometricMean({}), 0.0);
}

TEST(Means, HarmonicLeqGeometricLeqArithmetic)
{
    const std::vector<double> xs{0.7, 1.3, 2.9, 0.4};
    EXPECT_LE(harmonicMean(xs), geometricMean(xs) + 1e-12);
    EXPECT_LE(geometricMean(xs), arithmeticMean(xs) + 1e-12);
}

TEST(TextTable, AlignsColumns)
{
    TextTable t("demo");
    t.addRow({"name", "value"});
    t.beginRow();
    t.cell("x");
    t.cell(3.14159, 2);
    std::ostringstream oss;
    t.print(oss);
    const std::string s = oss.str();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("3.14"), std::string::npos);
    EXPECT_NE(s.find("name"), std::string::npos);
}

TEST(TextTable, Format)
{
    EXPECT_EQ(formatDouble(1.5, 1), "1.5");
    EXPECT_EQ(formatKiB(8 * 1024 * 2), "2.00 KiB");
}

} // namespace
} // namespace cobra
