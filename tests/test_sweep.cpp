/**
 * @file
 * SweepEngine determinism and plumbing tests: a parallel sweep must
 * be byte-identical to the serial reference (the central contract of
 * the `--jobs` knob), outcomes arrive in submission order, failures
 * stay isolated to their point, and the workload cache shares one
 * Program per name.
 */

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "program/workload.hpp"
#include "sim/presets.hpp"
#include "sim/sweep.hpp"

using namespace cobra;

namespace {

/** Shared workload cache: programs are immutable once built. */
prog::WorkloadCache&
cache()
{
    static prog::WorkloadCache c;
    return c;
}

sim::SweepPoint
smallPoint(sim::Design d, const std::string& wl)
{
    sim::SweepPoint p = sim::SweepPoint::preset(d, cache().get(wl));
    p.cfg.warmupInsts = 500;
    p.cfg.maxInsts = 3000;
    return p;
}

std::vector<sim::SweepOutcome>
runGrid(unsigned jobs, bool audit)
{
    const sim::Design designs[] = {sim::Design::Tourney,
                                   sim::Design::B2, sim::Design::TageL};
    const char* wls[] = {"dhrystone", "x264", "leela"};
    sim::SweepEngine engine(jobs);
    for (sim::Design d : designs) {
        for (const char* wl : wls) {
            sim::SweepPoint p = smallPoint(d, wl);
            p.cfg.audit = audit;
            engine.add(std::move(p));
        }
    }
    return engine.run();
}

} // namespace

TEST(SweepEngine, SerialAndParallelGridsAreIdentical)
{
    const auto serial = runGrid(1, /*audit=*/false);
    const auto parallel = runGrid(4, /*audit=*/false);

    ASSERT_EQ(serial.size(), 9u);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_TRUE(serial[i].ok()) << serial[i].error;
        EXPECT_TRUE(parallel[i].ok()) << parallel[i].error;
        EXPECT_EQ(serial[i].label, parallel[i].label);
        EXPECT_EQ(serial[i].result, parallel[i].result)
            << "point " << serial[i].label
            << " diverged between --jobs 1 and --jobs 4";
    }
}

TEST(SweepEngine, AuditedGridsAreIdenticalToo)
{
    const auto serial = runGrid(1, /*audit=*/true);
    const auto parallel = runGrid(3, /*audit=*/true);

    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_TRUE(serial[i].ok()) << serial[i].error;
        EXPECT_GT(serial[i].result.auditChecks, 0u);
        EXPECT_EQ(serial[i].result, parallel[i].result)
            << "audited point " << serial[i].label << " diverged";
    }
}

TEST(SweepEngine, ConcurrentIdenticalPointsStayDeterministic)
{
    // Shared-mutable-state stress: many copies of the SAME point in
    // flight at once. Any hidden cross-Simulator coupling (a static
    // table, a shared RNG, a mutated Program) shows up as divergence
    // between replicas.
    sim::SweepEngine engine(4);
    const unsigned kReplicas = 8;
    for (unsigned i = 0; i < kReplicas; ++i)
        engine.add(smallPoint(sim::Design::TageL, "gcc"));
    const auto outs = engine.run();

    ASSERT_EQ(outs.size(), kReplicas);
    for (const auto& o : outs) {
        ASSERT_TRUE(o.ok()) << o.error;
        EXPECT_EQ(o.result, outs.front().result)
            << "replica diverged: concurrent Simulators share state";
    }
}

TEST(SweepEngine, OutcomesArriveInSubmissionOrder)
{
    sim::SweepEngine engine(4);
    std::vector<std::string> expected;
    for (const char* wl : {"leela", "mcf", "xz", "gcc", "x264"}) {
        expected.push_back(
            smallPoint(sim::Design::Tourney, wl).label);
        engine.add(smallPoint(sim::Design::Tourney, wl));
    }
    const auto outs = engine.run();
    ASSERT_EQ(outs.size(), expected.size());
    for (std::size_t i = 0; i < outs.size(); ++i)
        EXPECT_EQ(outs[i].label, expected[i]);
}

TEST(SweepEngine, FailedPointIsIsolated)
{
    sim::SweepEngine engine(2);
    engine.add(smallPoint(sim::Design::B2, "leela"));

    sim::SweepPoint bad = smallPoint(sim::Design::B2, "leela");
    bad.label = "boom";
    bad.topology = []() -> bpu::Topology {
        throw std::runtime_error("synthetic topology failure");
    };
    engine.add(std::move(bad));
    engine.add(smallPoint(sim::Design::B2, "x264"));

    const auto outs = engine.run();
    ASSERT_EQ(outs.size(), 3u);
    EXPECT_TRUE(outs[0].ok());
    EXPECT_FALSE(outs[1].ok());
    EXPECT_NE(outs[1].error.find("synthetic topology failure"),
              std::string::npos);
    EXPECT_TRUE(outs[2].ok());
}

TEST(SweepEngine, FailuresCarryTheirTaxonomyClass)
{
    sim::SweepEngine engine(2);

    // A structural config violation -> "config".
    sim::SweepPoint badCfg = smallPoint(sim::Design::B2, "leela");
    badCfg.label = "badcfg";
    badCfg.cfg.deadlockCycles = 0;
    engine.add(std::move(badCfg));

    // An untyped exception from the topology factory -> "internal".
    sim::SweepPoint boom = smallPoint(sim::Design::B2, "leela");
    boom.label = "boom";
    boom.topology = []() -> bpu::Topology {
        throw std::runtime_error("synthetic topology failure");
    };
    engine.add(std::move(boom));

    engine.add(smallPoint(sim::Design::B2, "x264"));

    const auto outs = engine.run();
    ASSERT_EQ(outs.size(), 3u);
    EXPECT_FALSE(outs[0].ok());
    EXPECT_EQ(outs[0].errorClass, "config");
    EXPECT_FALSE(outs[1].ok());
    EXPECT_EQ(outs[1].errorClass, "internal");
    EXPECT_TRUE(outs[2].ok());
    EXPECT_TRUE(outs[2].errorClass.empty());
}

TEST(SweepEngine, SerialAndParallelAgreeOnFailuresToo)
{
    // The determinism contract extends to mixed grids: error text and
    // class must not depend on the worker schedule.
    auto grid = [](unsigned jobs) {
        sim::SweepEngine engine(jobs);
        engine.add(smallPoint(sim::Design::B2, "leela"));
        sim::SweepPoint bad = smallPoint(sim::Design::B2, "leela");
        bad.label = "bad";
        bad.cfg.deadlockCycles = 0;
        engine.add(std::move(bad));
        engine.add(smallPoint(sim::Design::TageL, "x264"));
        return engine.run();
    };
    const auto serial = grid(1);
    const auto parallel = grid(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].error, parallel[i].error);
        EXPECT_EQ(serial[i].errorClass, parallel[i].errorClass);
        if (serial[i].ok())
            EXPECT_EQ(serial[i].result, parallel[i].result);
    }
}

TEST(SweepEngine, StopFlagCancelsUnstartedPoints)
{
    sim::SweepEngine engine(1);
    std::atomic<bool> stop{true}; // set before run(): nothing starts
    engine.setStopFlag(&stop);
    engine.add(smallPoint(sim::Design::B2, "leela"));
    engine.add(smallPoint(sim::Design::B2, "x264"));

    const auto outs = engine.run();
    ASSERT_EQ(outs.size(), 2u);
    for (const auto& o : outs) {
        EXPECT_FALSE(o.ok());
        EXPECT_EQ(o.errorClass, "interrupted");
    }

    // Cleared flag: the same engine runs normally again.
    engine.setStopFlag(nullptr);
    engine.add(smallPoint(sim::Design::B2, "leela"));
    const auto outs2 = engine.run();
    ASSERT_EQ(outs2.size(), 1u);
    EXPECT_TRUE(outs2[0].ok());
}

TEST(SweepEngine, OnOutcomeSeesEveryPointOnce)
{
    sim::SweepEngine engine(4);
    const unsigned kPoints = 6;
    for (unsigned i = 0; i < kPoints; ++i)
        engine.add(smallPoint(sim::Design::Tourney, "leela"));
    sim::SweepPoint bad = smallPoint(sim::Design::Tourney, "leela");
    bad.label = "bad";
    bad.cfg.deadlockCycles = 0;
    engine.add(std::move(bad));

    std::mutex m;
    std::vector<int> seen(kPoints + 1, 0);
    std::vector<std::string> classes(kPoints + 1);
    engine.setOnOutcome(
        [&](std::size_t idx, const sim::SweepOutcome& o) {
            std::lock_guard<std::mutex> lk(m);
            ASSERT_LT(idx, seen.size());
            ++seen[idx];
            classes[idx] = o.errorClass;
        });

    const auto outs = engine.run();
    ASSERT_EQ(outs.size(), kPoints + 1);
    for (std::size_t i = 0; i < seen.size(); ++i)
        EXPECT_EQ(seen[i], 1) << "point " << i;
    EXPECT_EQ(classes[kPoints], "config"); // the hook saw the failure
}

TEST(SweepEngine, ExecuteHookDrivesThePoint)
{
    // The serve daemon's wall-clock watchdog rides this hook; check
    // that a custom driver (a) is actually used and (b) produces the
    // same result as Simulator::run() when it advances to completion.
    sim::SweepEngine ref(1);
    ref.add(smallPoint(sim::Design::B2, "leela"));
    const auto want = ref.run();
    ASSERT_TRUE(want[0].ok());

    sim::SweepEngine engine(1);
    sim::SweepPoint hooked = smallPoint(sim::Design::B2, "leela");
    std::atomic<unsigned> slices{0};
    hooked.execute = [&](sim::Simulator& s) {
        while (s.advanceTo(s.cycles() + 2000))
            ++slices;
        return s.run();
    };
    engine.add(std::move(hooked));
    const auto outs = engine.run();
    ASSERT_TRUE(outs[0].ok()) << outs[0].error;
    EXPECT_GT(slices.load(), 0u);
    EXPECT_EQ(outs[0].result, want[0].result)
        << "sliced advanceTo drive diverged from run()";
}

TEST(SweepEngine, RejectsIncompletePoints)
{
    sim::SweepEngine engine(1);
    sim::SweepPoint noTopo;
    noTopo.program = &cache().get("leela");
    EXPECT_THROW(engine.add(std::move(noTopo)), std::invalid_argument);

    sim::SweepPoint noProg;
    noProg.topology = [] {
        return sim::buildTopology(sim::Design::B2);
    };
    EXPECT_THROW(engine.add(std::move(noProg)), std::invalid_argument);
}

TEST(SweepEngine, HostCountersArePopulated)
{
    sim::SweepEngine engine(1);
    engine.add(smallPoint(sim::Design::Tourney, "dhrystone"));
    const auto outs = engine.run();
    ASSERT_EQ(outs.size(), 1u);
    const sim::HostCounters& h = outs[0].host;
    EXPECT_GT(h.simCycles, 0u);
    EXPECT_GT(h.simInsts, 0u);
    EXPECT_GE(h.wallSeconds, 0.0);
    if (h.wallSeconds > 0.0) {
        EXPECT_GT(h.kiloCyclesPerSec(), 0.0);
        EXPECT_GT(h.kips(), 0.0);
    }
}

TEST(SweepEngine, PostRunHookCapturesPerPointText)
{
    sim::SweepEngine engine(2);
    engine.add(smallPoint(sim::Design::B2, "leela"));
    engine.add(smallPoint(sim::Design::B2, "x264"));
    const auto outs = engine.run(
        [](std::size_t idx, sim::Simulator&, const sim::SimResult& r,
           const sim::SweepPoint& pt, std::ostream& os) {
            os << "point " << idx << " " << pt.label << " cycles "
               << r.cycles;
        });
    ASSERT_EQ(outs.size(), 2u);
    EXPECT_NE(outs[0].postRunText.find("point 0 B2/leela"),
              std::string::npos);
    EXPECT_NE(outs[1].postRunText.find("point 1 B2/x264"),
              std::string::npos);
}

TEST(SweepEngine, DefaultJobsHonoursEnvironment)
{
    ::setenv("COBRA_JOBS", "3", 1);
    EXPECT_EQ(sim::SweepEngine::defaultJobs(), 3u);
    ::setenv("COBRA_JOBS", "0", 1); // nonsense clamps to 1
    EXPECT_EQ(sim::SweepEngine::defaultJobs(), 1u);
    ::unsetenv("COBRA_JOBS");
    EXPECT_GE(sim::SweepEngine::defaultJobs(), 1u);
}

TEST(SweepJson, EmitsEveryPointWithHostBlock)
{
    sim::SweepEngine engine(1);
    engine.add(smallPoint(sim::Design::Tourney, "leela"));
    const auto outs = engine.run();

    const std::string path =
        ::testing::TempDir() + "/cobra_sweep_test.json";
    sim::writeSweepJson(path, "unit", outs, engine.jobs());

    std::ifstream f(path);
    ASSERT_TRUE(f.good());
    std::stringstream ss;
    ss << f.rdbuf();
    const std::string doc = ss.str();
    EXPECT_NE(doc.find("\"bench\": \"unit\""), std::string::npos);
    EXPECT_NE(doc.find("\"label\": \"Tournament/leela\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"kilocycles_per_sec\""), std::string::npos);
    EXPECT_NE(doc.find("\"cond_mispredicts\""), std::string::npos);
}

TEST(SweepJson, EscapesControlAndQuoteCharacters)
{
    EXPECT_EQ(sim::jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(sim::jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(WorkloadCache, SharesOneProgramPerName)
{
    prog::WorkloadCache c;
    const prog::Program& a = c.get("leela");
    const prog::Program& b = c.get("leela");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(c.size(), 1u);
    const prog::Program& other = c.get("mcf");
    EXPECT_NE(&a, &other);
    EXPECT_EQ(c.size(), 2u);
}

// ---- Lockstep replica groups -----------------------------------------

TEST(Lockstep, SerialParallelAndLockstepAreBitIdentical)
{
    // The three schedules the engine can produce — solo-serial
    // (lockstep off, jobs 1), solo-parallel (lockstep off, jobs 4),
    // and lockstep groups — must yield byte-identical outcomes.
    auto grid = [](unsigned jobs, bool lockstep) {
        const sim::Design designs[] = {
            sim::Design::Tourney, sim::Design::B2, sim::Design::TageL};
        sim::SweepEngine engine(jobs);
        engine.setLockstep(lockstep);
        for (const char* wl : {"leela", "x264"})
            for (sim::Design d : designs)
                engine.add(smallPoint(d, wl));
        return engine.run();
    };
    const auto solo = grid(1, false);
    const auto par = grid(4, false);
    const auto lock = grid(1, true);
    const auto lockPar = grid(4, true);

    ASSERT_EQ(solo.size(), 6u);
    for (std::size_t i = 0; i < solo.size(); ++i) {
        ASSERT_TRUE(solo[i].ok()) << solo[i].error;
        EXPECT_EQ(solo[i].replicaGroup, 1u);
        EXPECT_EQ(lock[i].replicaGroup, 3u)
            << lock[i].label << ": three designs share each workload";
        EXPECT_EQ(solo[i].result, par[i].result) << solo[i].label;
        EXPECT_EQ(solo[i].result, lock[i].result)
            << solo[i].label << ": lockstep diverged from solo";
        EXPECT_EQ(solo[i].result, lockPar[i].result) << solo[i].label;
        EXPECT_EQ(solo[i].statsJson, lock[i].statsJson);
    }
}

TEST(Lockstep, SliceSizeDoesNotChangeResults)
{
    auto run = [](Cycle slice) {
        sim::SweepEngine engine(1);
        engine.setLockstep(true);
        engine.setLockstepSlice(slice);
        for (unsigned i = 0; i < 3; ++i)
            engine.add(smallPoint(sim::Design::TageL, "gcc"));
        return engine.run();
    };
    const auto coarse = run(100'000); // One slice covers the run.
    const auto fine = run(64);        // Hundreds of rotations.
    ASSERT_EQ(coarse.size(), fine.size());
    for (std::size_t i = 0; i < coarse.size(); ++i) {
        ASSERT_TRUE(coarse[i].ok()) << coarse[i].error;
        EXPECT_EQ(coarse[i].replicaGroup, 3u);
        EXPECT_EQ(coarse[i].result, fine[i].result);
    }
}

TEST(Lockstep, GroupsOnlyMatchingProgramAndSeed)
{
    sim::SweepEngine engine(1);
    engine.setLockstep(true);
    engine.add(smallPoint(sim::Design::B2, "leela"));     // group A
    engine.add(smallPoint(sim::Design::Tourney, "leela")); // group A
    engine.add(smallPoint(sim::Design::B2, "x264"));      // group B
    sim::SweepPoint seeded = smallPoint(sim::Design::TageL, "leela");
    seeded.cfg.oracleSeed += 1; // different stream: stays solo
    engine.add(std::move(seeded));
    sim::SweepPoint hooked = smallPoint(sim::Design::B2, "leela");
    hooked.execute = [](sim::Simulator& s) { return s.run(); };
    engine.add(std::move(hooked)); // custom driver: stays solo

    const auto outs = engine.run();
    ASSERT_EQ(outs.size(), 5u);
    EXPECT_EQ(outs[0].replicaGroup, 2u);
    EXPECT_EQ(outs[1].replicaGroup, 2u);
    EXPECT_EQ(outs[2].replicaGroup, 1u);
    EXPECT_EQ(outs[3].replicaGroup, 1u);
    EXPECT_EQ(outs[4].replicaGroup, 1u);
    for (const auto& o : outs)
        EXPECT_TRUE(o.ok()) << o.error;
    // The hooked replica of the same point agrees with the grouped one.
    EXPECT_EQ(outs[0].result, outs[4].result);
}

TEST(Lockstep, DegroupsFailedReplicaAndPreservesTaxonomy)
{
    sim::SweepEngine engine(1);
    engine.setLockstep(true);
    engine.add(smallPoint(sim::Design::B2, "leela"));

    // A replica whose Simulator construction fails (structural config
    // violation) degroups with errorClass "config"...
    sim::SweepPoint badCfg = smallPoint(sim::Design::Tourney, "leela");
    badCfg.label = "badcfg";
    badCfg.cfg.deadlockCycles = 0;
    engine.add(std::move(badCfg));

    // ...and one whose topology factory throws degroups as
    // "internal"; the survivors of the group still complete.
    sim::SweepPoint boom = smallPoint(sim::Design::TageL, "leela");
    boom.label = "boom";
    boom.topology = []() -> bpu::Topology {
        throw std::runtime_error("synthetic topology failure");
    };
    engine.add(std::move(boom));
    engine.add(smallPoint(sim::Design::TageL, "leela"));

    const auto outs = engine.run();
    ASSERT_EQ(outs.size(), 4u);
    EXPECT_TRUE(outs[0].ok()) << outs[0].error;
    EXPECT_EQ(outs[0].replicaGroup, 4u);
    EXPECT_EQ(outs[1].errorClass, "config");
    EXPECT_EQ(outs[2].errorClass, "internal");
    EXPECT_TRUE(outs[3].ok()) << outs[3].error;

    // The survivors' results match a clean solo run.
    sim::SweepEngine solo(1);
    solo.setLockstep(false);
    solo.add(smallPoint(sim::Design::B2, "leela"));
    solo.add(smallPoint(sim::Design::TageL, "leela"));
    const auto ref = solo.run();
    EXPECT_EQ(outs[0].result, ref[0].result);
    EXPECT_EQ(outs[3].result, ref[1].result);
}

TEST(Lockstep, JsonCarriesLoopAndReplicaGroup)
{
    sim::SweepEngine engine(1);
    engine.setLockstep(true);
    engine.add(smallPoint(sim::Design::B2, "leela"));
    engine.add(smallPoint(sim::Design::TageL, "leela"));
    const auto outs = engine.run();
    ASSERT_TRUE(outs[0].ok());
    EXPECT_EQ(outs[0].loop, "specialized");

    const std::string path =
        ::testing::TempDir() + "/cobra_lockstep_test.json";
    sim::writeSweepJson(path, "unit", outs, engine.jobs());
    std::ifstream f(path);
    ASSERT_TRUE(f.good());
    std::stringstream ss;
    ss << f.rdbuf();
    const std::string doc = ss.str();
    EXPECT_NE(doc.find("\"loop\": \"specialized\""), std::string::npos);
    EXPECT_NE(doc.find("\"replica_group\": 2"), std::string::npos);
}
