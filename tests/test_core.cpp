#include <gtest/gtest.h>

#include "program/builder.hpp"
#include "program/workload.hpp"
#include "sim/presets.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace cobra::core {
namespace {

using prog::BranchBehavior;
using prog::OpClass;

sim::SimConfig
quickConfig()
{
    sim::SimConfig cfg = sim::makeConfig(sim::Design::B2);
    cfg.maxInsts = 20'000;
    cfg.warmupInsts = 5'000;
    return cfg;
}

/** Straight-line megaloop: no branches except one backward jump. */
prog::Program
straightLineProgram(std::size_t body)
{
    prog::ProgramBuilder bld(9);
    prog::CodeMix mix;
    mix.fLoad = mix.fStore = mix.fMul = mix.fDiv = mix.fFp = 0;
    mix.depChain = 0.0;
    const Addr top = bld.here();
    bld.emitStraightLine(body, mix);
    bld.emitJump(top);
    prog::Program p = bld.takeProgram();
    p.setEntry(top);
    return p;
}

TEST(CoreIntegration, StraightLineIpcNearWidth)
{
    // Independent ALU ops with a single backward jump: a 4-wide core
    // should sustain IPC well above 2.
    const prog::Program p = straightLineProgram(200);
    sim::Simulator s(p, sim::buildTopology(sim::Design::TageL),
                     quickConfig());
    const auto r = s.run();
    EXPECT_FALSE(r.deadlocked);
    EXPECT_GT(r.ipc(), 2.0);
}

TEST(CoreIntegration, DependenceChainLimitsIpc)
{
    // A fully serialised dependence chain caps IPC near 1.
    prog::ProgramBuilder bld(10);
    const Addr top = bld.here();
    for (int i = 0; i < 100; ++i) {
        prog::StaticInst si;
        si.op = OpClass::IntAlu;
        si.dst = 5;
        si.src1 = 5;
        bld.emit(si);
    }
    bld.emitJump(top);
    prog::Program p = bld.takeProgram();
    p.setEntry(top);
    sim::Simulator s(p, sim::buildTopology(sim::Design::TageL),
                     quickConfig());
    const auto r = s.run();
    EXPECT_FALSE(r.deadlocked);
    EXPECT_LT(r.ipc(), 1.3);
    EXPECT_GT(r.ipc(), 0.5);
}

TEST(CoreIntegration, CommittedStreamMatchesOracle)
{
    // Whatever speculation does, committed counts track the oracle's
    // architectural path: all conditional branches commit exactly as
    // many times as the oracle executes them.
    BranchBehavior b;
    b.kind = BranchBehavior::Kind::Loop;
    b.trip = 5;
    const prog::Program p = test::singleBranchProgram(b);
    sim::SimConfig cfg = quickConfig();
    sim::Simulator s(p, sim::buildTopology(sim::Design::B2), cfg);
    const auto r = s.run();
    EXPECT_FALSE(r.deadlocked);
    // Program: 5 pad + brach-if/else(1+4+1+4) + jmp per iteration;
    // branch density must match the static layout (1 branch per 12
    // insts when not-taken path runs, 11 when taken).
    EXPECT_NEAR(static_cast<double>(r.insts) / r.condBranches, 11.2,
                1.0);
}

TEST(CoreIntegration, MispredictsRecoverCorrectPath)
{
    // A 50/50 random branch forces constant mispredicts; execution
    // must still commit the architectural stream without deadlock.
    BranchBehavior b;
    b.kind = BranchBehavior::Kind::Biased;
    b.pTaken = 0.5;
    b.seed = 77;
    const prog::Program p = test::singleBranchProgram(b);
    sim::Simulator s(p, sim::buildTopology(sim::Design::B2),
                     quickConfig());
    const auto r = s.run();
    EXPECT_FALSE(r.deadlocked);
    EXPECT_GT(r.condMispredicts, r.condBranches / 4);
    EXPECT_GT(r.ipc(), 0.05);
}

TEST(CoreIntegration, TakenBranchEveryPacketStillFlows)
{
    // A tight loop of back-to-back taken jumps exercises redirects.
    prog::ProgramBuilder bld(11);
    const Addr top = bld.here();
    prog::CodeMix mix;
    mix.fLoad = mix.fStore = mix.fMul = mix.fDiv = mix.fFp = 0;
    bld.emitStraightLine(2, mix);
    bld.emitJump(top);
    prog::Program p = bld.takeProgram();
    p.setEntry(top);
    sim::Simulator s(p, sim::buildTopology(sim::Design::TageL),
                     quickConfig());
    const auto r = s.run();
    EXPECT_FALSE(r.deadlocked);
    // 3 insts per iteration with a taken jump: at least 1 per cycle
    // once the uBTB covers the loop.
    EXPECT_GT(r.ipc(), 1.0);
}

TEST(CoreIntegration, SerializationReducesFetchThroughput)
{
    // §I claim: serializing fetch at branches costs IPC on
    // branch-dense code.
    const auto prof = prog::WorkloadLibrary::profile("dhrystone");
    const prog::Program p = prog::buildWorkload(prof);

    sim::SimConfig cfg = sim::makeConfig(sim::Design::TageL);
    cfg.maxInsts = 80'000;
    cfg.warmupInsts = 30'000;
    sim::Simulator normal(p, sim::buildTopology(sim::Design::TageL),
                          cfg);
    const double ipcNormal = normal.run().ipc();

    cfg.frontend.serializeFetch = true;
    sim::Simulator serial(p, sim::buildTopology(sim::Design::TageL),
                          cfg);
    const double ipcSerial = serial.run().ipc();

    EXPECT_LT(ipcSerial, ipcNormal * 0.97)
        << "serialized fetch must lose IPC on branch-dense code";
}

TEST(CoreIntegration, SfbConvertsEligibleBranches)
{
    const auto prof = prog::WorkloadLibrary::profile("coremark");
    const prog::Program p = prog::buildWorkload(prof);
    sim::SimConfig cfg = quickConfig();
    cfg.backend.sfbEnabled = true;
    sim::Simulator s(p, sim::buildTopology(sim::Design::TageL), cfg);
    const auto r = s.run();
    EXPECT_FALSE(r.deadlocked);
    EXPECT_GT(r.sfbConversions, 100u);
}

TEST(CoreIntegration, SfbImprovesAccuracyOnHammockCode)
{
    const auto prof = prog::WorkloadLibrary::profile("coremark");
    const prog::Program p = prog::buildWorkload(prof);
    sim::SimConfig cfg = quickConfig();
    cfg.maxInsts = 60'000;
    cfg.warmupInsts = 20'000;

    sim::Simulator off(p, sim::buildTopology(sim::Design::TageL), cfg);
    const auto roff = off.run();

    cfg.backend.sfbEnabled = true;
    sim::Simulator on(p, sim::buildTopology(sim::Design::TageL), cfg);
    const auto ron = on.run();

    EXPECT_GT(ron.accuracy(), roff.accuracy())
        << "SFB removes hammock mispredicts (paper §VI-C)";
}

TEST(CoreIntegration, GhistRepairModesOrdered)
{
    // §VI-B: no repair < repair-only <= repair+replay in accuracy on
    // correlation-heavy code.
    const auto prof = prog::WorkloadLibrary::profile("deepsjeng");
    const prog::Program p = prog::buildWorkload(prof);
    sim::SimConfig cfg = quickConfig();
    cfg.maxInsts = 60'000;
    cfg.warmupInsts = 20'000;

    auto runWith = [&](bpu::GhistRepairMode m) {
        sim::SimConfig c = cfg;
        c.frontend.ghistMode = m;
        c.backend.ghistMode = m;
        sim::Simulator s(p, sim::buildTopology(sim::Design::TageL), c);
        return s.run();
    };

    const auto none = runWith(bpu::GhistRepairMode::None);
    const auto repair = runWith(bpu::GhistRepairMode::RepairOnly);
    const auto replay = runWith(bpu::GhistRepairMode::RepairAndReplay);

    EXPECT_GT(repair.accuracy(), none.accuracy())
        << "snapshot repair must beat corrupted histories";
    EXPECT_GE(replay.accuracy(), repair.accuracy() - 0.005)
        << "replay must not lose accuracy";
}

} // namespace
} // namespace cobra::core
