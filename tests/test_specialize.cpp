/**
 * @file
 * Specialized-loop exactness tests: the fused (devirtualized, SoA,
 * prefetching) cycle loop must be a pure host-side optimisation.
 * Every test here compares SpecializeMode::Off (the generic
 * virtual-dispatch reference) against Auto/Require and demands
 * bit-identical SimResults and stats documents — across designs,
 * SFB/ghist variants, warp snapshots taken mid-run on one mode and
 * resumed on the other, and the guard-wrapped configurations that
 * must fall back to the generic loop.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bpu/specialize.hpp"
#include "guard/errors.hpp"
#include "program/workload.hpp"
#include "sim/presets.hpp"
#include "sim/sweep.hpp"
#include "warp/snapshot.hpp"

using namespace cobra;

namespace {

prog::WorkloadCache&
cache()
{
    static prog::WorkloadCache c;
    return c;
}

sim::SimConfig
smallCfg(sim::Design d, sim::SpecializeMode mode)
{
    sim::SimConfig cfg = sim::makeConfig(d);
    cfg.warmupInsts = 2000;
    cfg.maxInsts = 40'000;
    cfg.specialize = mode;
    return cfg;
}

/** Run one (design, workload) point and return result + stats doc. */
std::pair<sim::SimResult, std::string>
runOnce(sim::Design d, const std::string& wl, sim::SimConfig cfg,
        const char* expect_loop = nullptr)
{
    sim::Simulator s(cache().get(wl), sim::buildTopology(d), cfg);
    if (expect_loop != nullptr) {
        EXPECT_STREQ(s.loopVariant(), expect_loop)
            << sim::designName(d) << "/" << wl;
    }
    const sim::SimResult r = s.run();
    return {r, sim::renderPointStats("p", s, r)};
}

} // namespace

TEST(Specialize, EveryRegisteredDesignFusesAndMatchesGeneric)
{
    for (sim::Design d : sim::paperDesigns()) {
        const sim::SimConfig off =
            smallCfg(d, sim::SpecializeMode::Off);
        const sim::SimConfig req =
            smallCfg(d, sim::SpecializeMode::Require);

        // The three paper designs are pre-registered tuples; Require
        // must bind, Off must not.
        ASSERT_TRUE(
            sim::specializeAvailable(sim::buildTopology(d), req))
            << sim::designName(d);

        const auto [rg, sg] = runOnce(d, "leela", off, "generic");
        const auto [rs, ss] = runOnce(d, "leela", req, "specialized");
        EXPECT_EQ(rg, rs)
            << sim::designName(d)
            << ": specialized loop diverged from generic";
        EXPECT_EQ(sg, ss)
            << sim::designName(d) << ": stats documents diverged";
    }
}

TEST(Specialize, AutoModeMatchesAvailability)
{
    // Auto must bind exactly when specializeAvailable() says so, for
    // every design including the unregistered ones.
    const sim::Design all[] = {sim::Design::Tourney, sim::Design::B2,
                               sim::Design::TageL, sim::Design::RefBig};
    for (sim::Design d : all) {
        sim::SimConfig cfg = smallCfg(d, sim::SpecializeMode::Auto);
        cfg.maxInsts = 2000; // Availability only; keep it cheap.
        const bool avail =
            sim::specializeAvailable(sim::buildTopology(d), cfg);
        sim::Simulator s(cache().get("dhrystone"),
                         sim::buildTopology(d), cfg);
        EXPECT_EQ(std::string(s.loopVariant()),
                  avail ? "specialized" : "generic")
            << sim::designName(d);
    }
}

TEST(Specialize, SfbAndGhistVariantsStayBitIdentical)
{
    const bpu::GhistRepairMode modes[] = {
        bpu::GhistRepairMode::None, bpu::GhistRepairMode::RepairOnly,
        bpu::GhistRepairMode::RepairAndReplay};
    for (bpu::GhistRepairMode gm : modes) {
        for (bool sfb : {false, true}) {
            sim::SimConfig off =
                smallCfg(sim::Design::TageL, sim::SpecializeMode::Off);
            off.frontend.ghistMode = gm;
            off.backend.ghistMode = gm;
            off.backend.sfbEnabled = sfb;
            sim::SimConfig req = off;
            req.specialize = sim::SpecializeMode::Require;

            const auto [rg, sg] =
                runOnce(sim::Design::TageL, "x264", off, "generic");
            const auto [rs, ss] = runOnce(sim::Design::TageL, "x264",
                                          req, "specialized");
            EXPECT_EQ(rg, rs) << "ghist="
                              << bpu::ghistRepairModeName(gm)
                              << " sfb=" << sfb;
            EXPECT_EQ(sg, ss);
        }
    }
}

TEST(Specialize, AuditFallsBackToGenericAndRuns)
{
    sim::SimConfig cfg =
        smallCfg(sim::Design::B2, sim::SpecializeMode::Auto);
    cfg.audit = true;
    EXPECT_FALSE(
        sim::specializeAvailable(sim::buildTopology(sim::Design::B2),
                                 cfg));
    const auto [r, stats] =
        runOnce(sim::Design::B2, "gcc", cfg, "generic");
    EXPECT_GT(r.auditChecks, 0u);
    EXPECT_FALSE(r.deadlocked);
}

TEST(Specialize, FaultInjectionFallsBackToGenericDeterministically)
{
    sim::SimConfig cfg =
        smallCfg(sim::Design::Tourney, sim::SpecializeMode::Auto);
    cfg.faultRate = 0.01;
    const auto [a, sa] =
        runOnce(sim::Design::Tourney, "mcf", cfg, "generic");
    // Auto silently degrades; an explicit Off must reproduce the
    // exact same faulted run (the fault RNG stream is config-keyed,
    // not loop-keyed).
    cfg.specialize = sim::SpecializeMode::Off;
    const auto [b, sb] =
        runOnce(sim::Design::Tourney, "mcf", cfg, "generic");
    EXPECT_GT(a.faultsInjected, 0u);
    EXPECT_EQ(a, b);
    EXPECT_EQ(sa, sb);
}

TEST(Specialize, RequireThrowsConfigErrorWhenGuardsAreActive)
{
    sim::SimConfig cfg =
        smallCfg(sim::Design::TageL, sim::SpecializeMode::Require);
    cfg.audit = true;
    EXPECT_THROW(sim::Simulator(cache().get("leela"),
                                sim::buildTopology(sim::Design::TageL),
                                cfg),
                 guard::ConfigError);

    sim::SimConfig faulted =
        smallCfg(sim::Design::TageL, sim::SpecializeMode::Require);
    faulted.faultRate = 0.001;
    EXPECT_THROW(sim::Simulator(cache().get("leela"),
                                sim::buildTopology(sim::Design::TageL),
                                faulted),
                 guard::ConfigError);
}

TEST(Specialize, SnapshotsAreInterchangeableBetweenLoops)
{
    // A warp snapshot captured under one loop must restore and resume
    // bit-exactly under the other: the fingerprint deliberately does
    // not encode the specialize mode, because the modes share all
    // architectural state (SoA strips serialize in the same stream
    // format the generic loop uses).
    const prog::Program& p = cache().get("x264");
    for (sim::Design d : sim::paperDesigns()) {
        const sim::SimConfig off = smallCfg(d, sim::SpecializeMode::Off);
        const sim::SimConfig req =
            smallCfg(d, sim::SpecializeMode::Require);

        sim::Simulator ref(p, sim::buildTopology(d), off);
        const sim::SimResult want = ref.run();
        ASSERT_GT(want.cycles, 0u);

        // Capture mid-run on the generic loop, resume specialized.
        sim::Simulator a(p, sim::buildTopology(d), off);
        ASSERT_TRUE(a.advanceTo(want.cycles / 2));
        const warp::Snapshot snapG = warp::captureSnapshot(a);
        sim::Simulator b(p, sim::buildTopology(d), req);
        ASSERT_STREQ(b.loopVariant(), "specialized");
        warp::restoreSnapshot(b, snapG);
        EXPECT_EQ(b.run(), want)
            << sim::designName(d) << ": generic->specialized resume";

        // And the reverse: capture specialized, resume generic.
        sim::Simulator c(p, sim::buildTopology(d), req);
        ASSERT_TRUE(c.advanceTo(want.cycles / 3));
        const warp::Snapshot snapS = warp::captureSnapshot(c);
        sim::Simulator e(p, sim::buildTopology(d), off);
        warp::restoreSnapshot(e, snapS);
        EXPECT_EQ(e.run(), want)
            << sim::designName(d) << ": specialized->generic resume";

        // The capturing specialized simulator itself resumes exactly.
        EXPECT_EQ(c.run(), want)
            << sim::designName(d) << ": capture perturbed the run";
    }
}

TEST(Specialize, RegistryRoundTrips)
{
    // The shipped designs' keys are pre-registered...
    for (sim::Design d : sim::paperDesigns()) {
        const std::string key =
            sim::buildTopology(d).specializedKey();
        ASSERT_FALSE(key.empty()) << sim::designName(d);
        EXPECT_TRUE(bpu::spec::isRegisteredKey(key)) << key;
    }
    // ...and user registration is additive and idempotent.
    const std::string fake = "bim>bim>bim";
    EXPECT_FALSE(bpu::spec::isRegisteredKey(fake));
    bpu::spec::registerKey(fake);
    bpu::spec::registerKey(fake);
    EXPECT_TRUE(bpu::spec::isRegisteredKey(fake));
    const auto keys = bpu::spec::registeredKeys();
    EXPECT_GE(keys.size(), 4u);
}
