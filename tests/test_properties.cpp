/**
 * @file
 * Property-style parameterized suites: invariants swept across
 * designs, behaviour classes, counter widths, and index modes.
 */

#include <gtest/gtest.h>

#include "common/sat_counter.hpp"
#include "components/bim.hpp"
#include "program/workload.hpp"
#include "sim/presets.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace cobra {
namespace {

// ---------------------------------------------------------------------
// Saturating counters: invariants over all widths.
// ---------------------------------------------------------------------

class SatCounterWidth : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SatCounterWidth, NeverLeavesRange)
{
    const unsigned w = GetParam();
    SatCounter c(w, 0);
    Rng rng(w);
    for (int i = 0; i < 2000; ++i) {
        c.train(rng.chance(0.5));
        ASSERT_LE(c.value(), c.maxValue());
    }
}

TEST_P(SatCounterWidth, ConvergesToBias)
{
    const unsigned w = GetParam();
    SatCounter c(w, 0);
    for (int i = 0; i < 200; ++i)
        c.train(true);
    EXPECT_TRUE(c.taken());
    for (int i = 0; i < 400; ++i)
        c.train(false);
    EXPECT_FALSE(c.taken());
}

INSTANTIATE_TEST_SUITE_P(Widths, SatCounterWidth,
                         ::testing::Values(1u, 2u, 3u, 4u, 6u, 8u));

// ---------------------------------------------------------------------
// HBIM index modes: each mode must learn what it is built for.
// ---------------------------------------------------------------------

struct IndexModeCase
{
    comps::IndexMode mode;
    const char* name;
};

class HbimModes : public ::testing::TestWithParam<IndexModeCase>
{
};

TEST_P(HbimModes, LearnsStaticBias)
{
    comps::HbimParams p;
    p.sets = 128;
    p.mode = GetParam().mode;
    p.histBits = 6;
    p.latency = 2;
    p.fetchWidth = 4;
    comps::Hbim bim(GetParam().name, p);
    test::SingleBranchDriver drv(bim, 0x4000, 0);
    std::vector<bool> always(1500, true);
    EXPECT_GT(drv.accuracy(always), 0.98) << GetParam().name;
}

TEST_P(HbimModes, MetadataWithinDeclaredBits)
{
    comps::HbimParams p;
    p.sets = 128;
    p.mode = GetParam().mode;
    p.latency = 2;
    p.fetchWidth = 4;
    comps::Hbim bim(GetParam().name, p);
    HistoryRegister gh(64);
    bpu::PredictContext ctx;
    ctx.pc = 0x4000;
    ctx.validSlots = 4;
    ctx.ghist = &gh;
    bpu::PredictionBundle b;
    b.width = 4;
    bpu::Metadata meta{};
    bim.predict(ctx, b, meta);
    EXPECT_EQ(meta[0] & ~maskBits(bim.metaBits()), 0u)
        << "metadata must fit the declared bit budget";
}

INSTANTIATE_TEST_SUITE_P(
    Modes, HbimModes,
    ::testing::Values(
        IndexModeCase{comps::IndexMode::Pc, "pc"},
        IndexModeCase{comps::IndexMode::GlobalHist, "ghist"},
        IndexModeCase{comps::IndexMode::LocalHist, "lhist"},
        IndexModeCase{comps::IndexMode::GshareHash, "gshare"},
        IndexModeCase{comps::IndexMode::LshareHash, "lshare"}),
    [](const auto& info) { return std::string(info.param.name); });

// ---------------------------------------------------------------------
// End-to-end behaviour classes x designs: every design must beat a
// baseline on learnable behaviours, and the full system must stay
// deadlock-free.
// ---------------------------------------------------------------------

struct BehaviorCase
{
    const char* name;
    prog::BranchBehavior behavior;
    double minAccuracy; ///< Weakest design must reach this.
};

BehaviorCase
makeCase(const char* name, prog::BranchBehavior::Kind kind, double minAcc)
{
    BehaviorCase c;
    c.name = name;
    c.behavior.kind = kind;
    c.behavior.seed = 0xCAFE;
    c.minAccuracy = minAcc;
    switch (kind) {
      case prog::BranchBehavior::Kind::Biased:
        c.behavior.pTaken = 0.05;
        break;
      case prog::BranchBehavior::Kind::Loop:
        c.behavior.trip = 6;
        break;
      case prog::BranchBehavior::Kind::Periodic:
        c.behavior.pattern = 0b0011;
        c.behavior.patternLen = 4;
        break;
      case prog::BranchBehavior::Kind::GlobalCorrelated:
        c.behavior.depth = 5;
        c.behavior.noise = 0.0;
        break;
      case prog::BranchBehavior::Kind::LocalCorrelated:
        c.behavior.depth = 5;
        c.behavior.noise = 0.0;
        break;
    }
    return c;
}

using DesignBehavior = std::tuple<sim::Design, int>;

class DesignsLearnBehaviors
    : public ::testing::TestWithParam<DesignBehavior>
{
  public:
    static std::vector<BehaviorCase>
    cases()
    {
        using K = prog::BranchBehavior::Kind;
        return {
            makeCase("biased", K::Biased, 0.90),
            makeCase("loop", K::Loop, 0.90),
            makeCase("periodic", K::Periodic, 0.90),
            makeCase("gcorr", K::GlobalCorrelated, 0.90),
            makeCase("lcorr", K::LocalCorrelated, 0.80),
        };
    }
};

TEST_P(DesignsLearnBehaviors, AccuracyAboveFloor)
{
    const auto [design, caseIdx] = GetParam();
    const BehaviorCase c = cases()[static_cast<std::size_t>(caseIdx)];
    const prog::Program p = test::singleBranchProgram(c.behavior);
    sim::SimConfig cfg = sim::makeConfig(design);
    cfg.maxInsts = 40'000;
    cfg.warmupInsts = 40'000;
    sim::Simulator s(p, sim::buildTopology(design), cfg);
    const auto r = s.run();
    EXPECT_FALSE(r.deadlocked);
    EXPECT_GT(r.accuracy(), c.minAccuracy)
        << sim::designName(design) << " on " << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DesignsLearnBehaviors,
    ::testing::Combine(::testing::Values(sim::Design::Tourney,
                                         sim::Design::B2,
                                         sim::Design::TageL),
                       ::testing::Range(0, 5)),
    [](const auto& info) {
        // Note: no commas outside parens inside this lambda — the
        // INSTANTIATE macro would split on them.
        const sim::Design d = std::get<0>(info.param);
        const int i = std::get<1>(info.param);
        std::string name = std::string(sim::designName(d)) + "_" +
                           DesignsLearnBehaviors::cases()
                               [static_cast<std::size_t>(i)].name;
        // gtest parameter names must be alphanumeric.
        std::erase_if(name, [](char c) { return !isalnum(c) && c != '_'; });
        return name;
    });

// ---------------------------------------------------------------------
// Workload-level properties across the full SPEC-proxy set.
// ---------------------------------------------------------------------

class WorkloadSweep : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadSweep, TageLNeverWorseThanBackingBim)
{
    // The composed TAGE-L pipeline must never do materially worse
    // than its own backing bimodal table alone: the topology only
    // *adds* more powerful predictions on top.
    const prog::Program p = prog::buildWorkload(
        prog::WorkloadLibrary::profile(GetParam()));
    sim::SimConfig cfg = sim::makeConfig(sim::Design::TageL);
    cfg.maxInsts = 20'000;
    cfg.warmupInsts = 8'000;

    sim::Simulator full(p, sim::buildTopology(sim::Design::TageL),
                        cfg);
    const auto rFull = full.run();

    bpu::Topology bimOnly;
    comps::HbimParams ip;
    ip.sets = 4096;
    ip.mode = comps::IndexMode::Pc;
    ip.latency = 2;
    ip.fetchWidth = 4;
    bimOnly.setRoot(
        bimOnly.leaf(bimOnly.make<comps::Hbim>("BIM", ip)));
    sim::Simulator base(p, std::move(bimOnly), cfg);
    const auto rBase = base.run();

    EXPECT_GT(rFull.accuracy(), rBase.accuracy() - 0.02)
        << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Spec, WorkloadSweep,
    ::testing::Values("perlbench", "gcc", "mcf", "omnetpp",
                      "xalancbmk", "x264", "deepsjeng", "leela",
                      "exchange2", "xz"),
    [](const auto& info) { return info.param; });

} // namespace
} // namespace cobra
