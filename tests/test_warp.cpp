/**
 * @file
 * Warp subsystem tests: state-archive primitives, full-simulator
 * checkpoint round-trips (including mid-speculation captures taken at
 * arbitrary cycles), structured rejection of corrupted or mismatched
 * snapshots, functional fast-forward, and warp-driver determinism.
 */

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "guard/errors.hpp"
#include "program/workload.hpp"
#include "sim/presets.hpp"
#include "sim/simulator.hpp"
#include "warp/fastforward.hpp"
#include "warp/snapshot.hpp"
#include "warp/state_io.hpp"
#include "warp/warp.hpp"

using namespace cobra;

namespace {

/** Shared workload cache: programs are immutable once built. */
prog::WorkloadCache&
cache()
{
    static prog::WorkloadCache c;
    return c;
}

sim::SimConfig
smallCfg(sim::Design d)
{
    sim::SimConfig cfg = sim::makeConfig(d);
    cfg.warmupInsts = 2000;
    cfg.maxInsts = 40000;
    return cfg;
}

/** A scratch directory under the system temp dir, wiped on entry. */
std::string
scratchDir(const char* leaf)
{
    const std::filesystem::path p =
        std::filesystem::temp_directory_path() / leaf;
    std::filesystem::remove_all(p);
    std::filesystem::create_directories(p);
    return p.string();
}

} // namespace

// ---------------------------------------------------------------------
// State archive primitives
// ---------------------------------------------------------------------

TEST(StateIo, PrimitivesRoundTripThroughSections)
{
    warp::StateWriter w;
    w.section("scalars");
    w.u8(0xAB);
    w.u32(0xDEADBEEFu);
    w.u64(0x0123456789ABCDEFull);
    w.i64(-42);
    w.boolean(true);
    w.boolean(false);
    w.f64(3.14159);
    w.str("cobra");
    w.section("vectors");
    w.vecU(std::vector<std::uint16_t>{1, 2, 65535});
    w.vecU(std::vector<std::uint64_t>{});

    const std::vector<std::uint8_t> bytes = w.take();
    warp::StateReader r(bytes.data(), bytes.size());
    r.section("scalars");
    EXPECT_EQ(r.u8(), 0xAB);
    EXPECT_EQ(r.u32(), 0xDEADBEEFu);
    EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
    EXPECT_EQ(r.i64(), -42);
    EXPECT_TRUE(r.boolean());
    EXPECT_FALSE(r.boolean());
    EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
    EXPECT_EQ(r.str(), "cobra");
    r.section("vectors");
    EXPECT_EQ(r.vecU<std::uint16_t>(),
              (std::vector<std::uint16_t>{1, 2, 65535}));
    EXPECT_TRUE(r.vecU<std::uint64_t>().empty());
    EXPECT_NO_THROW(r.expectEnd());
}

TEST(StateIo, TruncatedArchiveIsAStructuredError)
{
    warp::StateWriter w;
    w.u64(7);
    const std::vector<std::uint8_t> bytes = w.take();
    warp::StateReader r(bytes.data(), bytes.size() - 3);
    EXPECT_THROW(r.u64(), guard::CheckpointError);
}

TEST(StateIo, SectionTagMismatchIsAStructuredError)
{
    warp::StateWriter w;
    w.section("alpha");
    const std::vector<std::uint8_t> bytes = w.take();
    warp::StateReader r(bytes.data(), bytes.size());
    EXPECT_THROW(r.section("beta"), guard::CheckpointError);
}

TEST(StateIo, MissingSectionSentinelIsAStructuredError)
{
    warp::StateWriter w;
    w.u32(0); // Not the sentinel.
    w.str("alpha");
    const std::vector<std::uint8_t> bytes = w.take();
    warp::StateReader r(bytes.data(), bytes.size());
    EXPECT_THROW(r.section("alpha"), guard::CheckpointError);
}

TEST(StateIo, BooleanByteOutOfRangeIsAStructuredError)
{
    warp::StateWriter w;
    w.u8(2);
    const std::vector<std::uint8_t> bytes = w.take();
    warp::StateReader r(bytes.data(), bytes.size());
    EXPECT_THROW(r.boolean(), guard::CheckpointError);
}

TEST(StateIo, TrailingBytesAreAStructuredError)
{
    warp::StateWriter w;
    w.u8(1);
    w.u8(2);
    const std::vector<std::uint8_t> bytes = w.take();
    warp::StateReader r(bytes.data(), bytes.size());
    (void)r.u8();
    EXPECT_THROW(r.expectEnd(), guard::CheckpointError);
}

TEST(StateIo, OversizedVectorLengthIsAStructuredError)
{
    // A length prefix far beyond the archive: must fail the bounds
    // check, not allocate or read out of bounds.
    warp::StateWriter w;
    w.u64(1ull << 40);
    const std::vector<std::uint8_t> bytes = w.take();
    warp::StateReader r(bytes.data(), bytes.size());
    EXPECT_THROW(r.vecU<std::uint64_t>(), guard::CheckpointError);
}

// ---------------------------------------------------------------------
// Full-simulator snapshot round-trips
// ---------------------------------------------------------------------

TEST(Snapshot, MidRunRoundTripIsBitExactForEveryPresetDesign)
{
    const prog::Program& p = cache().get("x264");
    for (sim::Design d : sim::paperDesigns()) {
        const sim::SimConfig cfg = smallCfg(d);

        sim::Simulator ref(p, sim::buildTopology(d), cfg);
        const sim::SimResult want = ref.run();
        ASSERT_GT(want.cycles, 0u);

        // Stop mid-run at an arbitrary cycle: the pipeline is full of
        // in-flight speculation (fetch packets, ROB entries, pending
        // repair walks) — exactly the state a checkpoint must carry.
        sim::Simulator a(p, sim::buildTopology(d), cfg);
        ASSERT_TRUE(a.advanceTo(want.cycles / 2))
            << sim::designName(d) << ": run finished before midpoint";
        const warp::Snapshot snap = warp::captureSnapshot(a);
        EXPECT_EQ(snap.cycle, want.cycles / 2);

        // The capturing simulator itself resumes bit-exactly...
        const sim::SimResult resumed = a.run();
        EXPECT_EQ(resumed, want)
            << sim::designName(d) << ": capture perturbed the run";

        // ...and so does a fresh simulator restored from the snapshot.
        sim::Simulator b(p, sim::buildTopology(d), cfg);
        warp::restoreSnapshot(b, snap);
        const sim::SimResult restored = b.run();
        EXPECT_EQ(restored, want)
            << sim::designName(d) << ": restore diverged";
    }
}

TEST(Snapshot, AuditedRunRoundTripsBitExactly)
{
    const prog::Program& p = cache().get("leela");
    sim::SimConfig cfg = smallCfg(sim::Design::B2);
    cfg.audit = true;

    sim::Simulator ref(p, sim::buildTopology(sim::Design::B2), cfg);
    const sim::SimResult want = ref.run();

    sim::Simulator a(p, sim::buildTopology(sim::Design::B2), cfg);
    ASSERT_TRUE(a.advanceTo(want.cycles / 3));
    const warp::Snapshot snap = warp::captureSnapshot(a);

    sim::Simulator b(p, sim::buildTopology(sim::Design::B2), cfg);
    warp::restoreSnapshot(b, snap);
    EXPECT_EQ(b.run(), want);
}

TEST(Snapshot, EncodeDecodeRoundTrips)
{
    const prog::Program& p = cache().get("x264");
    const sim::SimConfig cfg = smallCfg(sim::Design::Tourney);
    sim::Simulator s(p, sim::buildTopology(sim::Design::Tourney), cfg);
    ASSERT_TRUE(s.advanceTo(5000));
    const warp::Snapshot snap = warp::captureSnapshot(s);

    const std::vector<std::uint8_t> bytes = warp::encodeSnapshot(snap);
    const warp::Snapshot back = warp::decodeSnapshot(bytes);
    EXPECT_EQ(back.fingerprint, snap.fingerprint);
    EXPECT_EQ(back.cycle, snap.cycle);
    EXPECT_EQ(back.insts, snap.insts);
    EXPECT_EQ(back.payload, snap.payload);
}

TEST(Snapshot, CorruptionIsRejectedStructurally)
{
    const prog::Program& p = cache().get("x264");
    const sim::SimConfig cfg = smallCfg(sim::Design::Tourney);
    sim::Simulator s(p, sim::buildTopology(sim::Design::Tourney), cfg);
    ASSERT_TRUE(s.advanceTo(5000));
    const std::vector<std::uint8_t> good =
        warp::encodeSnapshot(warp::captureSnapshot(s));

    // Bad magic.
    {
        std::vector<std::uint8_t> bad = good;
        bad[0] ^= 0xFF;
        EXPECT_THROW(warp::decodeSnapshot(bad),
                     guard::CheckpointError);
    }
    // Unsupported version.
    {
        std::vector<std::uint8_t> bad = good;
        bad[4] += 1;
        EXPECT_THROW(warp::decodeSnapshot(bad),
                     guard::CheckpointError);
    }
    // Flipped payload byte: caught by the checksum.
    {
        std::vector<std::uint8_t> bad = good;
        bad[good.size() - 1] ^= 0x01;
        EXPECT_THROW(warp::decodeSnapshot(bad),
                     guard::CheckpointError);
    }
    // Truncated mid-payload and truncated mid-header.
    {
        std::vector<std::uint8_t> bad(good.begin(),
                                      good.end() - good.size() / 4);
        EXPECT_THROW(warp::decodeSnapshot(bad),
                     guard::CheckpointError);
        bad.resize(10);
        EXPECT_THROW(warp::decodeSnapshot(bad),
                     guard::CheckpointError);
    }
    // Empty buffer.
    EXPECT_THROW(warp::decodeSnapshot({}), guard::CheckpointError);
}

TEST(Snapshot, FingerprintMismatchIsRejectedOnRestore)
{
    const prog::Program& p = cache().get("x264");
    sim::Simulator producer(p, sim::buildTopology(sim::Design::B2),
                            smallCfg(sim::Design::B2));
    ASSERT_TRUE(producer.advanceTo(5000));
    const warp::Snapshot snap = warp::captureSnapshot(producer);

    // A differently-configured simulator must refuse the snapshot
    // before touching the payload.
    sim::Simulator other(p, sim::buildTopology(sim::Design::TageL),
                         smallCfg(sim::Design::TageL));
    EXPECT_THROW(warp::restoreSnapshot(other, snap),
                 guard::CheckpointError);
}

TEST(Snapshot, FileRoundTripAndIoErrors)
{
    const std::string dir = scratchDir("cobra_warp_test_snapdir");
    const prog::Program& p = cache().get("x264");
    const sim::SimConfig cfg = smallCfg(sim::Design::Tourney);
    sim::Simulator s(p, sim::buildTopology(sim::Design::Tourney), cfg);
    ASSERT_TRUE(s.advanceTo(5000));
    const warp::Snapshot snap = warp::captureSnapshot(s);

    const std::string path = dir + "/mid.warp";
    warp::writeSnapshotFile(snap, path);
    const warp::Snapshot back = warp::readSnapshotFile(path);
    EXPECT_EQ(back.payload, snap.payload);
    EXPECT_EQ(back.cycle, snap.cycle);

    EXPECT_THROW(warp::readSnapshotFile(dir + "/missing.warp"),
                 guard::CheckpointError);
    EXPECT_THROW(warp::writeSnapshotFile(snap, dir +
                                                   "/no/such/dir/x"),
                 guard::CheckpointError);
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// Functional fast-forward
// ---------------------------------------------------------------------

TEST(FastForward, AdvancesAndStaysCheckpointable)
{
    const prog::Program& p = cache().get("x264");
    const sim::SimConfig cfg = smallCfg(sim::Design::B2);

    sim::Simulator s(p, sim::buildTopology(sim::Design::B2), cfg);
    const warp::FastForwardResult r = warp::fastForward(s, 10000);
    EXPECT_EQ(r.insts, 10000u);
    EXPECT_GT(r.packets, 0u);

    // The quiesced post-FF state checkpoints and restores cleanly.
    const warp::Snapshot snap = warp::captureSnapshot(s);
    sim::Simulator b(p, sim::buildTopology(sim::Design::B2), cfg);
    warp::restoreSnapshot(b, snap);
    const sim::SimResult after = b.runInterval(2000, 4000);
    // Superscalar commit may overshoot the bound by one group.
    EXPECT_GE(after.insts, 4000u);
    EXPECT_LT(after.insts, 4000u + 8u);
    EXPECT_FALSE(after.deadlocked);
}

TEST(FastForward, NoWarmModeStillAdvancesArchitecture)
{
    const prog::Program& p = cache().get("x264");
    const sim::SimConfig cfg = smallCfg(sim::Design::B2);
    sim::Simulator s(p, sim::buildTopology(sim::Design::B2), cfg);

    warp::FastForwardOptions off;
    off.warmPredictor = false;
    off.warmCaches = false;
    const warp::FastForwardResult r = warp::fastForward(s, 10000, off);
    EXPECT_EQ(r.insts, 10000u);
    EXPECT_EQ(r.packets, 0u);
}

// ---------------------------------------------------------------------
// Warp driver
// ---------------------------------------------------------------------

namespace {

warp::WarpEstimate
runSmallWarp(unsigned jobs, const std::string& checkpoint_dir = "")
{
    const prog::Program& p = cache().get("leela");
    const sim::SimConfig cfg = smallCfg(sim::Design::B2);
    warp::WarpConfig w;
    w.intervals = 4;
    w.sampleInsts = 4000;
    w.warmupCycles = 2000;
    w.jobs = jobs;
    w.checkpointDir = checkpoint_dir;
    return warp::runWarp(
        p, [] { return sim::buildTopology(sim::Design::B2); }, cfg, w);
}

} // namespace

TEST(Warp, EstimateIsDeterministicAndJobCountInvariant)
{
    const warp::WarpEstimate a = runSmallWarp(1);
    const warp::WarpEstimate b = runSmallWarp(1);
    const warp::WarpEstimate c = runSmallWarp(2);

    ASSERT_EQ(a.intervals.size(), 4u);
    EXPECT_EQ(a.estimate, b.estimate);
    EXPECT_EQ(a.estimate, c.estimate);
    EXPECT_DOUBLE_EQ(a.ipc, c.ipc);
    EXPECT_DOUBLE_EQ(a.mpki, c.mpki);
    for (std::size_t i = 0; i < a.intervals.size(); ++i)
        EXPECT_EQ(a.intervals[i].result, c.intervals[i].result)
            << "interval " << i
            << " diverged between jobs=1 and jobs=2";
}

TEST(Warp, EstimateTracksTheFullDetailedRun)
{
    const prog::Program& p = cache().get("leela");
    const sim::SimConfig cfg = smallCfg(sim::Design::B2);
    sim::Simulator full(p, sim::buildTopology(sim::Design::B2), cfg);
    const sim::SimResult want = full.run();

    const warp::WarpEstimate est = runSmallWarp(1);
    EXPECT_EQ(est.estimate.insts, cfg.maxInsts);
    // At this tiny scale the sampling error is large compared to the
    // acceptance benchmark; this only pins the estimator to the right
    // ballpark (a stitching bug is off by integer factors).
    EXPECT_NEAR(est.ipc, want.ipc(), 0.15 * want.ipc());
    EXPECT_GT(est.detailedInsts, 0u);
    EXPECT_GT(est.ffInsts, 0u);
}

TEST(Warp, StatsGroupsJsonCarriesTheWarpGroup)
{
    const warp::WarpEstimate est = runSmallWarp(1);
    const std::string groups = warp::statsGroupsJson(est);
    EXPECT_EQ(groups.front(), '{');
    EXPECT_NE(groups.find("\"warp\""), std::string::npos);
    EXPECT_NE(groups.find("\"ff_insts\""), std::string::npos);
    EXPECT_NE(groups.find("\"ipc_ci95_ppm\""), std::string::npos);
    // The registry tree of the last interval rides along.
    EXPECT_NE(groups.find("\"frontend\""), std::string::npos);
    EXPECT_NE(groups.find("\"bpu\""), std::string::npos);
}

TEST(Warp, CheckpointDirPersistsRestorableSnapshots)
{
    const std::string dir = scratchDir("cobra_warp_test_ckptdir");
    const warp::WarpEstimate est = runSmallWarp(1, dir);
    ASSERT_EQ(est.intervals.size(), 4u);

    const sim::SimConfig cfg = smallCfg(sim::Design::B2);
    for (unsigned i = 0; i < 4; ++i) {
        const warp::Snapshot snap = warp::readSnapshotFile(
            dir + "/interval-" + std::to_string(i) + ".warp");
        sim::Simulator s(cache().get("leela"),
                         sim::buildTopology(sim::Design::B2), cfg);
        EXPECT_NO_THROW(warp::restoreSnapshot(s, snap))
            << "interval " << i;
    }
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// Warm-state cache hooks (cobra_serve)
// ---------------------------------------------------------------------

namespace {

/** An in-memory snapshot store wired into WarpConfig's cache hooks. */
struct MemorySnapshotStore
{
    std::map<unsigned, std::vector<std::uint8_t>> entries;
    unsigned lookups = 0;

    void
    wire(warp::WarpConfig& w)
    {
        w.snapshotLookup = [this](unsigned i, warp::Snapshot& out) {
            ++lookups;
            auto it = entries.find(i);
            if (it == entries.end())
                return false;
            out = warp::decodeSnapshot(it->second); // may throw
            return true;
        };
        w.snapshotStore = [this](unsigned i,
                                 const warp::Snapshot& snap) {
            entries[i] = warp::encodeSnapshot(snap);
        };
    }
};

warp::WarpEstimate
runHookedWarp(MemorySnapshotStore& store)
{
    const prog::Program& p = cache().get("leela");
    const sim::SimConfig cfg = smallCfg(sim::Design::B2);
    warp::WarpConfig w;
    w.intervals = 4;
    w.sampleInsts = 4000;
    w.warmupCycles = 2000;
    w.jobs = 1;
    store.wire(w);
    return warp::runWarp(
        p, [] { return sim::buildTopology(sim::Design::B2); }, cfg, w);
}

} // namespace

TEST(Warp, WarmCacheSkipsFastForwardBitIdentically)
{
    MemorySnapshotStore store;

    // Cold pass: every lookup misses, every snapshot is offered.
    const warp::WarpEstimate cold = runHookedWarp(store);
    EXPECT_EQ(cold.warmHits, 0u);
    EXPECT_GT(cold.ffInsts, 0u);
    EXPECT_EQ(store.entries.size(), 4u);

    // Warm pass: all four intervals hit, fast-forward is skipped, and
    // the estimate is bit-identical to the cold run.
    const warp::WarpEstimate warm = runHookedWarp(store);
    EXPECT_EQ(warm.warmHits, 4u);
    EXPECT_EQ(warm.ffInsts, 0u);
    EXPECT_EQ(warm.estimate, cold.estimate);
    EXPECT_DOUBLE_EQ(warm.ipc, cold.ipc);
    ASSERT_EQ(warm.intervals.size(), cold.intervals.size());
    for (std::size_t i = 0; i < cold.intervals.size(); ++i)
        EXPECT_EQ(warm.intervals[i].result, cold.intervals[i].result)
            << "interval " << i << " diverged on the warm path";
}

TEST(Warp, PartialWarmCacheFallsBackToColdPass)
{
    MemorySnapshotStore store;
    const warp::WarpEstimate cold = runHookedWarp(store);

    // Drop one interval: the all-or-nothing warm hit must fail and
    // the run regenerate every entry via a full cold pass.
    store.entries.erase(2);
    const warp::WarpEstimate again = runHookedWarp(store);
    EXPECT_EQ(again.warmHits, 0u);
    EXPECT_GT(again.ffInsts, 0u);
    EXPECT_EQ(again.estimate, cold.estimate);
    EXPECT_EQ(store.entries.size(), 4u); // regenerated
}

TEST(Warp, PoisonedWarmEntryIsASafeMiss)
{
    MemorySnapshotStore store;
    const warp::WarpEstimate cold = runHookedWarp(store);

    // Corrupt one cached snapshot. cobra_serve's WarmCache turns the
    // decoder's CheckpointError into a miss; model the same contract
    // here — the lookup hook must not propagate a snapshot it cannot
    // vouch for.
    auto poisoned = store.entries;
    poisoned[1][poisoned[1].size() / 2] ^= 0x20;
    MemorySnapshotStore bad;
    bad.entries = poisoned;

    const prog::Program& p = cache().get("leela");
    const sim::SimConfig cfg = smallCfg(sim::Design::B2);
    warp::WarpConfig w;
    w.intervals = 4;
    w.sampleInsts = 4000;
    w.warmupCycles = 2000;
    w.jobs = 1;
    unsigned rejected = 0;
    w.snapshotLookup = [&](unsigned i, warp::Snapshot& out) {
        auto it = bad.entries.find(i);
        if (it == bad.entries.end())
            return false;
        try {
            out = warp::decodeSnapshot(it->second);
        } catch (const guard::CheckpointError&) {
            ++rejected;
            bad.entries.erase(it); // evict, regenerate below
            return false;
        }
        return true;
    };
    w.snapshotStore = [&](unsigned i, const warp::Snapshot& snap) {
        bad.entries[i] = warp::encodeSnapshot(snap);
    };

    const warp::WarpEstimate est = warp::runWarp(
        p, [] { return sim::buildTopology(sim::Design::B2); }, cfg, w);
    EXPECT_EQ(rejected, 1u);     // the poison was caught, not trusted
    EXPECT_EQ(est.warmHits, 0u); // one miss forces a full cold pass
    EXPECT_EQ(est.estimate, cold.estimate);
}

TEST(Warp, InvalidConfigurationsAreRejected)
{
    const prog::Program& p = cache().get("leela");
    const sim::SimConfig cfg = smallCfg(sim::Design::B2);
    const auto topo = [] {
        return sim::buildTopology(sim::Design::B2);
    };

    warp::WarpConfig w;
    w.intervals = 0;
    EXPECT_THROW(warp::runWarp(p, topo, cfg, w), guard::ConfigError);

    w.intervals = 4;
    w.warmupCycles = 0;
    EXPECT_THROW(warp::runWarp(p, topo, cfg, w), guard::ConfigError);

    w = warp::WarpConfig{};
    sim::SimConfig tiny = cfg;
    tiny.maxInsts = 2;
    w.intervals = 8;
    EXPECT_THROW(warp::runWarp(p, topo, tiny, w), guard::ConfigError);
}
