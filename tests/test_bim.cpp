#include <gtest/gtest.h>

#include "components/bim.hpp"
#include "test_util.hpp"

namespace cobra::comps {
namespace {

HbimParams
smallParams(IndexMode mode)
{
    HbimParams p;
    p.sets = 256;
    p.mode = mode;
    p.histBits = 8;
    p.latency = 2;
    p.fetchWidth = 4;
    return p;
}

TEST(Hbim, LearnsStronglyBiasedBranch)
{
    Hbim bim("BIM", smallParams(IndexMode::Pc));
    test::SingleBranchDriver drv(bim, 0x4000, 1);
    std::vector<bool> always(2000, true);
    EXPECT_GT(drv.accuracy(always), 0.999);
}

TEST(Hbim, LearnsNotTakenBranch)
{
    Hbim bim("BIM", smallParams(IndexMode::Pc));
    test::SingleBranchDriver drv(bim, 0x4000, 0);
    drv.setBaseTaken(true);
    std::vector<bool> never(2000, false);
    EXPECT_GT(drv.accuracy(never), 0.999);
}

TEST(Hbim, PcIndexedCannotLearnCorrelation)
{
    Hbim bim("BIM", smallParams(IndexMode::Pc));
    test::SingleBranchDriver drv(bim, 0x4000, 0);
    const auto outs = test::periodicOutcomes(0b01, 2, 2000);
    // Alternating branch: a 2-bit counter is ~50% at best.
    const double acc = drv.accuracy(outs);
    EXPECT_LT(acc, 0.7);
}

TEST(Hbim, GshareLearnsPeriodicPattern)
{
    Hbim bim("GBIM", smallParams(IndexMode::GshareHash));
    test::SingleBranchDriver drv(bim, 0x4000, 0);
    const auto outs = test::periodicOutcomes(0b011, 3, 4000);
    EXPECT_GT(drv.accuracy(outs), 0.95);
}

TEST(Hbim, GlobalHistIndexLearnsCorrelation)
{
    Hbim bim("GHBIM", smallParams(IndexMode::GlobalHist));
    test::SingleBranchDriver drv(bim, 0x4000, 0);
    const auto outs = test::historyCorrelatedOutcomes(6, 6000);
    EXPECT_GT(drv.accuracy(outs), 0.9);
}

TEST(Hbim, LshareLearnsLocalPattern)
{
    Hbim bim("LBIM", smallParams(IndexMode::LshareHash));
    test::SingleBranchDriver drv(bim, 0x4000, 0);
    const auto outs = test::loopOutcomes(5, 800);
    EXPECT_GT(drv.accuracy(outs), 0.95);
}

TEST(Hbim, SuperscalarSlotsIndependent)
{
    // Two branches in the same packet with opposite behaviour must
    // not alias (paper §III-C).
    Hbim bim("BIM", smallParams(IndexMode::Pc));
    test::SingleBranchDriver d0(bim, 0x4000, 0);
    test::SingleBranchDriver d1(bim, 0x4000, 3);
    double acc0 = 0, acc1 = 0;
    for (int i = 0; i < 500; ++i) {
        d0.round(true);
        d1.round(false);
    }
    int c0 = 0, c1 = 0;
    for (int i = 0; i < 500; ++i) {
        c0 += d0.round(true) == true;
        c1 += d1.round(false) == false;
    }
    acc0 = c0 / 500.0;
    acc1 = c1 / 500.0;
    EXPECT_GT(acc0, 0.99);
    EXPECT_GT(acc1, 0.99);
}

TEST(Hbim, MetadataCarriesReadCounters)
{
    Hbim bim("BIM", smallParams(IndexMode::Pc));
    bpu::PredictContext ctx;
    ctx.pc = 0x4000;
    ctx.validSlots = 4;
    bpu::PredictionBundle b;
    b.width = 4;
    bpu::Metadata meta{};
    bim.predict(ctx, b, meta);
    // Fresh table: every counter at the weak midpoint (2 for 2-bit).
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ((meta[0] >> (2 * i)) & 3, 2u);
}

TEST(Hbim, ProvidesDirectionForAllValidSlots)
{
    Hbim bim("BIM", smallParams(IndexMode::Pc));
    bpu::PredictContext ctx;
    ctx.pc = 0x4000;
    ctx.validSlots = 3;
    bpu::PredictionBundle b;
    b.width = 4;
    bpu::Metadata meta{};
    bim.predict(ctx, b, meta);
    EXPECT_TRUE(b.slots[0].valid);
    EXPECT_TRUE(b.slots[2].valid);
    EXPECT_FALSE(b.slots[3].valid);
}

TEST(Hbim, StorageAccounting)
{
    Hbim bim("BIM", smallParams(IndexMode::Pc));
    EXPECT_EQ(bim.storageBits(), 256u * 4 * 2);
    EXPECT_FALSE(bim.usesLocalHistory());
    Hbim lbim("LBIM", smallParams(IndexMode::LshareHash));
    EXPECT_TRUE(lbim.usesLocalHistory());
}

TEST(Hbim, DescribeMentionsIndexMode)
{
    Hbim bim("GBIM", smallParams(IndexMode::GshareHash));
    EXPECT_NE(bim.describe().find("gshare"), std::string::npos);
}

} // namespace
} // namespace cobra::comps
