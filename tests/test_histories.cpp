#include <gtest/gtest.h>

#include "bpu/ghist.hpp"
#include "bpu/lhist.hpp"

namespace cobra::bpu {
namespace {

TEST(GlobalHistoryProvider, PushAndRead)
{
    GlobalHistoryProvider g(16);
    g.push(true);
    g.push(false);
    EXPECT_FALSE(g.current().bit(0));
    EXPECT_TRUE(g.current().bit(1));
}

TEST(GlobalHistoryProvider, SnapshotRestore)
{
    GlobalHistoryProvider g(32);
    for (int i = 0; i < 10; ++i)
        g.push(i % 2 == 0);
    const auto snap = g.snapshot();
    const HistoryRegister before = g.current();
    g.push(true);
    g.push(true);
    g.restore(snap);
    EXPECT_TRUE(g.current() == before);
}

TEST(GlobalHistoryProvider, RestoreFromRegister)
{
    GlobalHistoryProvider g(32);
    HistoryRegister h(32);
    h.push(true);
    g.restore(h);
    EXPECT_TRUE(g.current().bit(0));
}

TEST(GlobalHistoryProvider, StorageIsRegisterBits)
{
    GlobalHistoryProvider g(64);
    EXPECT_EQ(g.storageBits(), 64u);
    EXPECT_GT(g.physicalCost().flopBits, 0u);
}

TEST(GlobalHistoryProvider, RepairModeNames)
{
    EXPECT_STREQ(ghistRepairModeName(GhistRepairMode::None), "none");
    EXPECT_STREQ(ghistRepairModeName(GhistRepairMode::RepairOnly),
                 "repair-only");
    EXPECT_STREQ(
        ghistRepairModeName(GhistRepairMode::RepairAndReplay),
        "repair+replay");
}

TEST(LocalHistoryProvider, IndexByPc)
{
    LocalHistoryProvider l(64, 16, 4);
    const Addr a = 0x1000;
    const Addr b = 0x1010; // different set
    l.specUpdate(a, true);
    EXPECT_EQ(l.read(a), 1u);
    EXPECT_EQ(l.read(b), 0u);
}

TEST(LocalHistoryProvider, ShiftsAndMasks)
{
    LocalHistoryProvider l(16, 4, 4);
    const Addr pc = 0x2000;
    for (int i = 0; i < 8; ++i)
        l.specUpdate(pc, true);
    EXPECT_EQ(l.read(pc), 0xfu) << "history masked to 4 bits";
    l.specUpdate(pc, false);
    EXPECT_EQ(l.read(pc), 0xeu);
}

TEST(LocalHistoryProvider, RestoreRepairsEntry)
{
    LocalHistoryProvider l(16, 8, 4);
    const Addr pc = 0x2000;
    l.specUpdate(pc, true);
    const std::uint64_t before = l.read(pc);
    l.specUpdate(pc, true);
    l.specUpdate(pc, false);
    l.restore(pc, before);
    EXPECT_EQ(l.read(pc), before);
}

TEST(LocalHistoryProvider, StorageAccounting)
{
    LocalHistoryProvider l(256, 32, 4);
    EXPECT_EQ(l.storageBits(), 256u * 32);
}

} // namespace
} // namespace cobra::bpu
