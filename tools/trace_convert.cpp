/**
 * @file
 * trace_convert: import external branch-trace corpora into the COBRA
 * binary container (CBTR), and inspect existing traces.
 *
 * Usage:
 *   trace_convert --in PATH --out PATH [--format cbp|alpha-bz2]
 *                 [--name NAME] [--fetch-width N]
 *   trace_convert --dump PATH [--limit N]
 *
 * Import formats (see src/trace/convert.hpp):
 *   cbp        CBP-style text records: `<hex pc> <0|1|N|T|n|t>` per
 *              line (the int_1 / fp_1 / mm_1 corpus)
 *   alpha-bz2  the same records, bzip2-compressed on disk (the
 *              `bunzip2 -kc <trace> | ./predictor` Alpha corpus);
 *              needs a build with libbz2
 *
 * Imported traces are TraceKind::External: they drive the idealized
 * trace-driven evaluator, not full-core replay (which needs
 * `cobra_sim --capture-trace`). Malformed input is a structured
 * error (exit 1); bad flag combinations exit 2.
 */

#include <iostream>
#include <string>

#include "trace/convert.hpp"
#include "trace/format.hpp"
#include "trace/replay.hpp"

using namespace cobra;

namespace {

void
usage()
{
    std::cout <<
        "trace_convert — import/inspect COBRA binary branch traces\n"
        "\n"
        "  --in PATH         input trace file to convert\n"
        "  --out PATH        output .cbtr path\n"
        "  --format F        cbp | alpha-bz2 (default: cbp, or\n"
        "                    alpha-bz2 when --in ends in .bz2)\n"
        "  --name NAME       trace name stored in the header\n"
        "                    (default: --in basename)\n"
        "  --fetch-width N   slot derivation width, 1..8 (default 4)\n"
        "  --dump PATH       print a .cbtr header and records instead\n"
        "  --limit N         max records to print with --dump\n"
        "                    (default 20; 0 = all)\n";
}

std::string
basenameOf(const std::string& path)
{
    const std::size_t slash = path.find_last_of('/');
    std::string b =
        slash == std::string::npos ? path : path.substr(slash + 1);
    const std::size_t dot = b.find('.');
    return dot == std::string::npos ? b : b.substr(0, dot);
}

const char*
kindName(trace::TraceKind k)
{
    switch (k) {
      case trace::TraceKind::CapturedOracle:
        return "captured-oracle";
      case trace::TraceKind::External:
        return "external";
    }
    return "?";
}

const char*
typeName(trace::RecordType t)
{
    switch (t) {
      case trace::RecordType::Cond:
        return "cond";
      case trace::RecordType::IndirectJump:
        return "jmp ";
      case trace::RecordType::IndirectCall:
        return "call";
    }
    return "?";
}

int
dumpTrace(const std::string& path, std::uint64_t limit)
{
    trace::TraceReader reader(path);
    const trace::TraceMeta& m = reader.meta();
    std::cout << "trace:    " << path << "\n"
              << "name:     " << m.name << "\n"
              << "kind:     " << kindName(m.kind) << "\n"
              << "records:  " << m.recordCount << " (" << m.condCount
              << " conditional)\n"
              << "blocks:   " << reader.blockCount() << "\n"
              << "fetchw:   " << unsigned(m.fetchWidth) << "\n";
    if (m.kind == trace::TraceKind::CapturedOracle) {
        std::cout << "seed:     0x" << std::hex << m.oracleSeed
                  << std::dec << "\n"
                  << "program:  0x" << std::hex << m.programFingerprint
                  << std::dec << "\n"
                  << "insts:    " << m.sourceInsts
                  << " (guaranteed replay budget)\n";
    }
    if (m.recordCount == 0 || limit == 0)
        return 0;
    std::cout << "\n";
    trace::DecodedBlock blk;
    std::uint64_t printed = 0;
    for (std::size_t b = 0; b < reader.blockCount(); ++b) {
        reader.decodeBlock(b, blk);
        for (std::size_t i = 0; i < blk.pc.size(); ++i) {
            const auto t = trace::DecodedBlock::typeOf(blk.meta[i]);
            std::cout << typeName(t) << " 0x" << std::hex << blk.pc[i]
                      << std::dec;
            if (t == trace::RecordType::Cond) {
                std::cout << (trace::DecodedBlock::takenOf(blk.meta[i])
                                  ? " T"
                                  : " N");
            }
            if (blk.target[i] != kInvalidAddr)
                std::cout << " -> 0x" << std::hex << blk.target[i]
                          << std::dec;
            std::cout << "\n";
            if (++printed >= limit) {
                if (printed < m.recordCount)
                    std::cout << "... (" << (m.recordCount - printed)
                              << " more; --limit 0 prints all)\n";
                return 0;
            }
        }
    }
    return 0;
}

int
runMain(int argc, char** argv)
{
    std::string inPath, outPath, dumpPath, name, format;
    unsigned fetchWidth = 4;
    std::uint64_t limit = 20;
    bool limitSet = false;
    try {
        for (int i = 1; i < argc; ++i) {
            const std::string a = argv[i];
            auto next = [&]() -> std::string {
                if (++i >= argc)
                    throw std::runtime_error("missing value for " + a);
                return argv[i];
            };
            if (a == "--in")
                inPath = next();
            else if (a == "--out")
                outPath = next();
            else if (a == "--format")
                format = next();
            else if (a == "--name")
                name = next();
            else if (a == "--fetch-width")
                fetchWidth = static_cast<unsigned>(
                    std::stoul(next(), nullptr, 0));
            else if (a == "--dump")
                dumpPath = next();
            else if (a == "--limit") {
                limit = std::stoull(next(), nullptr, 0);
                limitSet = true;
            } else if (a == "--help" || a == "-h") {
                usage();
                return 0;
            } else {
                throw std::runtime_error("unknown option: " + a);
            }
        }
        if (!dumpPath.empty()) {
            if (!inPath.empty() || !outPath.empty())
                throw std::runtime_error(
                    "--dump cannot be combined with --in/--out");
        } else {
            if (inPath.empty() || outPath.empty())
                throw std::runtime_error(
                    "--in and --out are both required (or --dump)");
            if (limitSet)
                throw std::runtime_error("--limit only applies to "
                                         "--dump");
        }
        if (fetchWidth < 1 || fetchWidth > 8)
            throw std::runtime_error("--fetch-width must be 1..8");
        if (format.empty()) {
            format = inPath.size() >= 4 &&
                             inPath.substr(inPath.size() - 4) == ".bz2"
                         ? "alpha-bz2"
                         : "cbp";
        }
        if (format != "cbp" && format != "alpha-bz2")
            throw std::runtime_error("unknown --format: " + format);
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n\n";
        usage();
        return 2;
    }

    if (!dumpPath.empty()) {
        if (limit == 0)
            limit = ~0ull;
        return dumpTrace(dumpPath, limit);
    }

    if (name.empty())
        name = basenameOf(inPath);
    const trace::ImportStats st =
        format == "cbp"
            ? trace::convertCbpFile(inPath, outPath, name, fetchWidth)
            : trace::convertAlphaBz2File(inPath, outPath, name,
                                         fetchWidth);
    std::cout << "imported " << st.records << " branch records ("
              << st.taken << " taken) from " << st.lines
              << " lines\n"
              << "name:     " << name << "\n"
              << "trace:    " << outPath << "\n";
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    try {
        return runMain(argc, argv);
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
