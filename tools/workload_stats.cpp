/**
 * @file
 * workload_stats: characterise the synthetic SPEC-proxy workloads —
 * static/dynamic branch populations, taken rates, behaviour-class
 * mixes, memory density. Companion to docs/WORKLOADS.md.
 *
 * Usage: workload_stats [workload ...]   (default: all)
 */

#include <iostream>

#include "common/table.hpp"
#include "program/analysis.hpp"
#include "program/workload.hpp"

using namespace cobra;

int
main(int argc, char** argv)
{
    std::vector<std::string> names;
    for (int i = 1; i < argc; ++i)
        names.emplace_back(argv[i]);
    if (names.empty())
        names = prog::WorkloadLibrary::all();

    TextTable t("workload characterisation (100k dynamic insts)");
    t.addRow({"workload", "stat insts", "stat brs", "dyn br/inst",
              "taken%", "mem/inst", "calls/KI", "ind/KI", "sfb-elig"});

    for (const auto& name : names) {
        prog::Program p;
        try {
            p = prog::buildWorkload(
                prog::WorkloadLibrary::profile(name));
        } catch (const std::exception& e) {
            std::cerr << "skipping " << name << ": " << e.what()
                      << "\n";
            continue;
        }
        const prog::WorkloadStats s = prog::analyzeWorkload(p);
        t.beginRow();
        t.cell(name);
        t.cell(std::to_string(s.staticInsts));
        t.cell(std::to_string(s.staticBranches));
        t.cell(s.branchDensity(), 3);
        t.cell(100 * s.takenRate(), 1);
        t.cell(s.memDensity(), 3);
        t.cell(1000.0 * s.dynCalls / s.dynInsts, 1);
        t.cell(1000.0 * s.dynIndirect / s.dynInsts, 2);
        t.cell(std::to_string(s.staticSfbEligible));
    }
    t.print(std::cout);

    std::cout << "\nstatic branch-behaviour mix:\n";
    for (const auto& name : names) {
        prog::Program p;
        try {
            p = prog::buildWorkload(
                prog::WorkloadLibrary::profile(name));
        } catch (const std::exception&) {
            continue;
        }
        const prog::WorkloadStats s = prog::analyzeWorkload(p, 1);
        std::cout << "  " << name << ":";
        for (const auto& [kind, count] : s.staticByKind)
            std::cout << " " << prog::behaviorKindName(kind) << "="
                      << count;
        std::cout << "\n";
    }
    return 0;
}
