#!/usr/bin/env python3
"""Validate a CobraScope --stats-json document against the checked-in
structural schema (tools/stats_schema.json).

Standard library only, deliberately: CI and developer machines can run
it with any Python 3 without installing a JSON-Schema package. The
schema file describes required keys and coarse types; the deep
invariants (counter values are non-negative integers, the group tree
nests properly, histograms carry samples/mean/buckets) are encoded
here.

Also validates the cobra_serve document family (--kind):

    stats            a cobra_sim/bench --stats-json document (default)
    serve-result     a spool/results/<id>.json result document
    serve-status     the daemon's spool/status.json health document
    search-frontier  a cobra_search Pareto-frontier artifact
                     (docs/SEARCH.md)

Usage:
    python3 tools/check_stats_schema.py DOC.json [--schema FILE]
                                        [--kind KIND]

Exits 0 when the document conforms, 1 with a list of violations
otherwise.
"""

import argparse
import json
import os
import sys

TYPES = {
    "string": str,
    "int": int,
    "number": (int, float),
    "bool": bool,
    "list": list,
    "dict": dict,
}


class Checker:
    def __init__(self, schema):
        self.schema = schema
        self.errors = []

    def fail(self, where, msg):
        self.errors.append(f"{where}: {msg}")

    def expect_type(self, where, value, tyname):
        if not isinstance(value, TYPES[tyname]) or (
            tyname != "bool" and isinstance(value, bool)
        ):
            self.fail(where, f"expected {tyname}, got {type(value).__name__}")
            return False
        return True

    def check_top(self, doc):
        for key, tyname in self.schema["top"].items():
            if key not in doc:
                self.fail("$", f"missing top-level key '{key}'")
            else:
                self.expect_type(f"$.{key}", doc[key], tyname)
        version = doc.get("version")
        if version != self.schema["version"]:
            self.fail("$.version", f"expected {self.schema['version']}, got {version}")

    def check_point(self, where, point):
        if not self.expect_type(where, point, "dict"):
            return
        label_key = self.schema["point_label"]
        if label_key not in point or not isinstance(point[label_key], str):
            self.fail(where, f"missing string '{label_key}'")
        if self.schema["point_error_key"] in point:
            # Failed points are label + error stubs; nothing else to check.
            self.expect_type(
                f"{where}.error", point[self.schema["point_error_key"]], "string"
            )
            return
        for key, tyname in self.schema["point_required"].items():
            if key not in point:
                self.fail(where, f"missing '{key}'")
            elif self.expect_type(f"{where}.{key}", point[key], tyname):
                if key == "result":
                    self.check_result(f"{where}.result", point[key])
                elif key == "groups":
                    self.check_groups(f"{where}.groups", point[key])

    def check_result(self, where, result):
        for key in self.schema["result_required"]:
            if key not in result:
                self.fail(where, f"missing result field '{key}'")
                continue
            value = result[key]
            if key == "deadlocked":
                self.expect_type(f"{where}.{key}", value, "bool")
            elif key == "diagnostics":
                self.expect_type(f"{where}.{key}", value, "string")
            else:
                self.expect_type(f"{where}.{key}", value, "number")

    def check_groups(self, where, groups):
        for key in self.schema["groups_required"]:
            if key not in groups:
                self.fail(where, f"missing group subtree '{key}'")
        self.check_tree(where, groups)

    def check_tree(self, where, node):
        """A group-tree node holds optional leaf stats plus nested children."""
        counters_key = self.schema["leaf_counters_key"]
        histograms_key = self.schema["leaf_histograms_key"]
        for key, value in node.items():
            here = f"{where}.{key}"
            if key == counters_key:
                if self.expect_type(here, value, "dict"):
                    for name, count in value.items():
                        if not isinstance(count, int) or isinstance(count, bool):
                            self.fail(f"{here}.{name}", "counter must be an integer")
                        elif count < 0:
                            self.fail(f"{here}.{name}", "counter must be >= 0")
            elif key == histograms_key:
                if self.expect_type(here, value, "dict"):
                    for name, hist in value.items():
                        self.check_histogram(f"{here}.{name}", hist)
            elif self.expect_type(here, value, "dict"):
                self.check_tree(here, value)

    def check_histogram(self, where, hist):
        if not self.expect_type(where, hist, "dict"):
            return
        for key in self.schema["histogram_required"]:
            if key not in hist:
                self.fail(where, f"missing histogram field '{key}'")
        if not isinstance(hist.get("buckets"), list):
            self.fail(f"{where}.buckets", "must be a list")

    def run(self, doc):
        self.check_top(doc)
        for i, point in enumerate(doc.get("points", [])):
            self.check_point(f"$.points[{i}]", point)
        return not self.errors


# cobra_serve failure taxonomy (guard::errorClassOf plus the stop-flag
# cancellation class); docs/SERVICE.md is the authoritative list.
ERROR_CLASSES = {
    "config",
    "contract",
    "deadlock",
    "checkpoint",
    "timeout",
    "sim",
    "internal",
    "interrupted",
}

RESULT_STATUSES = {"ok", "failed", "rejected", "interrupted"}
POINT_STATUSES = {"ok", "failed", "rejected", "pending"}
DAEMON_STATES = {"running", "draining", "stopped"}

# Numeric fields every successful point carries (writeResultFields
# emits more; these are the stable core the dashboards consume).
OK_POINT_NUMBERS = ["cycles", "insts", "ipc", "mpki", "accuracy",
                    "wall_seconds"]


class ServeResultChecker(Checker):
    """Validates one spool/results/<id>.json document."""

    def __init__(self):
        super().__init__(schema=None)

    def check_serve_point(self, where, point):
        if not self.expect_type(where, point, "dict"):
            return
        for key, ty in (("label", "string"), ("status", "string"),
                        ("attempts", "int")):
            if key not in point:
                self.fail(where, f"missing '{key}'")
            else:
                self.expect_type(f"{where}.{key}", point[key], ty)
        status = point.get("status")
        if status is not None and status not in POINT_STATUSES:
            self.fail(f"{where}.status", f"unknown status '{status}'")
        if status == "ok" and "search" in point:
            # A "kind": "search" request's single point embeds the
            # frontier artifact instead of sweep-point metrics.
            for key in ("functional_evals", "warp_evals",
                        "detailed_evals", "evals_saved",
                        "frontier_size"):
                if key not in point:
                    self.fail(where, f"missing '{key}'")
                else:
                    self.expect_type(f"{where}.{key}", point[key], "int")
            if "wall_seconds" not in point:
                self.fail(where, "missing 'wall_seconds'")
            sub = SearchFrontierChecker()
            if not sub.run(point["search"]):
                for err in sub.errors:
                    self.fail(f"{where}.search", err)
            return
        if status == "ok":
            for key in OK_POINT_NUMBERS:
                if key not in point:
                    self.fail(where, f"missing '{key}'")
                else:
                    self.expect_type(f"{where}.{key}", point[key],
                                     "number")
            if "deadlocked" in point:
                self.expect_type(f"{where}.deadlocked",
                                 point["deadlocked"], "bool")
            if "warp" in point and self.expect_type(
                f"{where}.warp", point["warp"], "dict"
            ):
                for key in ("intervals", "warm_hits", "ff_insts"):
                    if key not in point["warp"]:
                        self.fail(f"{where}.warp", f"missing '{key}'")
        elif status == "failed":
            cls = point.get("error_class")
            if cls not in ERROR_CLASSES:
                self.fail(f"{where}.error_class",
                          f"unknown class '{cls}'")
            if not isinstance(point.get("error"), str):
                self.fail(f"{where}.error", "missing string 'error'")

    def run(self, doc):
        if doc.get("tool") != "cobra_serve":
            self.fail("$.tool", "expected 'cobra_serve'")
        for key, ty in (("id", "string"), ("client", "string"),
                        ("priority", "int"), ("status", "string"),
                        ("points", "list")):
            if key not in doc:
                self.fail("$", f"missing top-level key '{key}'")
            else:
                self.expect_type(f"$.{key}", doc[key], ty)
        status = doc.get("status")
        if status is not None and status not in RESULT_STATUSES:
            self.fail("$.status", f"unknown status '{status}'")
        if status == "rejected" and not isinstance(
            doc.get("reason"), str
        ):
            self.fail("$.reason", "rejected documents need a reason")
        for i, point in enumerate(doc.get("points", []) or []):
            self.check_serve_point(f"$.points[{i}]", point)
        return not self.errors


class ServeStatusChecker(Checker):
    """Validates the daemon's spool/status.json health document."""

    def __init__(self):
        super().__init__(schema={
            "leaf_counters_key": "counters",
            "leaf_histograms_key": "histograms",
            "histogram_required": ["samples", "mean", "buckets"],
        })

    def run(self, doc):
        if doc.get("tool") != "cobra_serve":
            self.fail("$.tool", "expected 'cobra_serve'")
        state = doc.get("state")
        if state not in DAEMON_STATES:
            self.fail("$.state", f"unknown state '{state}'")
        for key in ("queued", "parked", "retired"):
            value = doc.get(key)
            if not isinstance(value, int) or isinstance(value, bool):
                self.fail(f"$.{key}", "must be an integer")
            elif value < 0:
                self.fail(f"$.{key}", "must be >= 0")
        stats = doc.get("stats")
        if not isinstance(stats, dict):
            self.fail("$.stats", "missing stats object")
        else:
            if "serve" not in stats:
                self.fail("$.stats", "missing 'serve' group")
            self.check_tree("$.stats", stats)
        return not self.errors


CANDIDATE_TIERS = {"pool", "surrogate", "functional", "warp", "detailed"}


class SearchFrontierChecker(Checker):
    """Validates a cobra_search frontier artifact (docs/SEARCH.md).

    Beyond key/type presence, the checker enforces the invariants the
    artifact promises: every frontier entry names an on_frontier
    candidate that reached the detailed tier, carries a full inline
    DesignSpec (the artifact alone reproduces the design), and the
    frontier list is sorted by area ascending.
    """

    def __init__(self):
        super().__init__(schema=None)

    def check_block(self, where, block, fields):
        if not self.expect_type(where, block, "dict"):
            return
        for key, ty in fields:
            if key not in block:
                self.fail(where, f"missing '{key}'")
            else:
                self.expect_type(f"{where}.{key}", block[key], ty)

    def check_candidate(self, where, cand):
        if not self.expect_type(where, cand, "dict"):
            return
        self.check_block(
            where,
            cand,
            (("id", "string"), ("name", "string"), ("anchor", "bool"),
             ("tier", "string"), ("storage_bits", "int"),
             ("storage_kb", "number"), ("area_um2", "number"),
             ("latency", "int"), ("on_frontier", "bool")),
        )
        tier = cand.get("tier")
        if isinstance(tier, str) and tier not in CANDIDATE_TIERS:
            self.fail(f"{where}.tier", f"unknown tier '{tier}'")
        if cand.get("on_frontier") is True and "detailed" not in cand:
            self.fail(where, "frontier member lacks detailed metrics")

    def check_frontier_entry(self, where, entry, by_id):
        if not self.expect_type(where, entry, "dict"):
            return
        self.check_block(
            where,
            entry,
            (("id", "string"), ("accuracy", "number"),
             ("mpki", "number"), ("ipc", "number"),
             ("area_um2", "number"), ("storage_kb", "number"),
             ("latency", "int"), ("spec", "dict")),
        )
        cand = by_id.get(entry.get("id"))
        if cand is None:
            self.fail(f"{where}.id",
                      f"'{entry.get('id')}' is not a candidate")
        elif cand.get("on_frontier") is not True:
            self.fail(f"{where}.id",
                      f"candidate '{entry['id']}' is not on_frontier")
        spec = entry.get("spec")
        if isinstance(spec, dict):
            # Provenance: the inline spec must be reloadable, so it
            # needs the DesignSpec skeleton.
            for key in ("name", "components", "tree"):
                if key not in spec:
                    self.fail(f"{where}.spec", f"missing '{key}'")

    def run(self, doc):
        if doc.get("tool") != "cobra_search":
            self.fail("$.tool", "expected 'cobra_search'")
        if doc.get("version") != 1:
            self.fail("$.version", f"expected 1, got {doc.get('version')}")
        for key, ty in (("seed", "int"), ("workloads", "list"),
                        ("workload_features", "list"),
                        ("candidates", "list"), ("frontier", "list")):
            if key not in doc:
                self.fail("$", f"missing top-level key '{key}'")
            else:
                self.expect_type(f"$.{key}", doc[key], ty)
        self.check_block("$.budget", doc.get("budget"),
                         (("storage_kb", "int"), ("area_um2", "number")))
        self.check_block(
            "$.tiers",
            doc.get("tiers"),
            (("pool", "int"), ("seed_evals", "int"),
             ("functional_survivors", "int"), ("warp_survivors", "int"),
             ("finalists", "int")),
        )
        self.check_block(
            "$.evals",
            doc.get("evals"),
            (("pool", "int"), ("functional", "int"), ("warp", "int"),
             ("detailed", "int"), ("saved_by_surrogate", "int"),
             ("anchors_dropped", "int")),
        )
        self.check_block(
            "$.surrogate",
            doc.get("surrogate"),
            (("used", "bool"), ("lambda", "number"),
             ("train_rmse", "number"), ("features", "list")),
        )

        candidates = doc.get("candidates") or []
        for i, cand in enumerate(candidates):
            self.check_candidate(f"$.candidates[{i}]", cand)
        by_id = {
            c.get("id"): c for c in candidates if isinstance(c, dict)
        }
        frontier = doc.get("frontier") or []
        if not frontier:
            self.fail("$.frontier", "frontier is empty")
        for i, entry in enumerate(frontier):
            self.check_frontier_entry(f"$.frontier[{i}]", entry, by_id)
        areas = [
            e["area_um2"] for e in frontier
            if isinstance(e, dict)
            and isinstance(e.get("area_um2"), (int, float))
        ]
        if areas != sorted(areas):
            self.fail("$.frontier", "entries not sorted by area_um2")
        flagged = sum(
            1 for c in candidates
            if isinstance(c, dict) and c.get("on_frontier") is True
        )
        if flagged != len(frontier):
            self.fail(
                "$.frontier",
                f"{flagged} candidates flagged on_frontier but "
                f"{len(frontier)} frontier entries",
            )
        return not self.errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("stats", help="the JSON document to validate")
    parser.add_argument(
        "--schema",
        default=os.path.join(os.path.dirname(__file__), "stats_schema.json"),
        help="schema file (default: tools/stats_schema.json)",
    )
    parser.add_argument(
        "--kind",
        choices=["stats", "serve-result", "serve-status",
                 "search-frontier"],
        default="stats",
        help="document family to validate (default: stats)",
    )
    args = parser.parse_args()

    with open(args.stats) as f:
        doc = json.load(f)

    if args.kind == "serve-result":
        checker = ServeResultChecker()
    elif args.kind == "serve-status":
        checker = ServeStatusChecker()
    elif args.kind == "search-frontier":
        checker = SearchFrontierChecker()
    else:
        with open(args.schema) as f:
            schema = json.load(f)
        checker = Checker(schema)

    if checker.run(doc):
        if args.kind == "search-frontier":
            print(
                f"OK: {args.stats} conforms "
                f"({len(doc.get('candidates') or [])} candidates, "
                f"{len(doc.get('frontier') or [])} frontier points)"
            )
            return 0
        points = doc.get("points", [])
        errored = sum(
            1
            for p in points
            if "error" in p or p.get("status") == "failed"
        )
        print(
            f"OK: {args.stats} conforms "
            f"({len(points)} points, {errored} error stubs)"
        )
        return 0
    for err in checker.errors:
        print(f"FAIL {err}", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
