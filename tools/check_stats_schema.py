#!/usr/bin/env python3
"""Validate a CobraScope --stats-json document against the checked-in
structural schema (tools/stats_schema.json).

Standard library only, deliberately: CI and developer machines can run
it with any Python 3 without installing a JSON-Schema package. The
schema file describes required keys and coarse types; the deep
invariants (counter values are non-negative integers, the group tree
nests properly, histograms carry samples/mean/buckets) are encoded
here.

Usage:
    python3 tools/check_stats_schema.py STATS.json [--schema FILE]

Exits 0 when the document conforms, 1 with a list of violations
otherwise.
"""

import argparse
import json
import os
import sys

TYPES = {
    "string": str,
    "int": int,
    "number": (int, float),
    "bool": bool,
    "list": list,
    "dict": dict,
}


class Checker:
    def __init__(self, schema):
        self.schema = schema
        self.errors = []

    def fail(self, where, msg):
        self.errors.append(f"{where}: {msg}")

    def expect_type(self, where, value, tyname):
        if not isinstance(value, TYPES[tyname]) or (
            tyname != "bool" and isinstance(value, bool)
        ):
            self.fail(where, f"expected {tyname}, got {type(value).__name__}")
            return False
        return True

    def check_top(self, doc):
        for key, tyname in self.schema["top"].items():
            if key not in doc:
                self.fail("$", f"missing top-level key '{key}'")
            else:
                self.expect_type(f"$.{key}", doc[key], tyname)
        version = doc.get("version")
        if version != self.schema["version"]:
            self.fail("$.version", f"expected {self.schema['version']}, got {version}")

    def check_point(self, where, point):
        if not self.expect_type(where, point, "dict"):
            return
        label_key = self.schema["point_label"]
        if label_key not in point or not isinstance(point[label_key], str):
            self.fail(where, f"missing string '{label_key}'")
        if self.schema["point_error_key"] in point:
            # Failed points are label + error stubs; nothing else to check.
            self.expect_type(
                f"{where}.error", point[self.schema["point_error_key"]], "string"
            )
            return
        for key, tyname in self.schema["point_required"].items():
            if key not in point:
                self.fail(where, f"missing '{key}'")
            elif self.expect_type(f"{where}.{key}", point[key], tyname):
                if key == "result":
                    self.check_result(f"{where}.result", point[key])
                elif key == "groups":
                    self.check_groups(f"{where}.groups", point[key])

    def check_result(self, where, result):
        for key in self.schema["result_required"]:
            if key not in result:
                self.fail(where, f"missing result field '{key}'")
                continue
            value = result[key]
            if key == "deadlocked":
                self.expect_type(f"{where}.{key}", value, "bool")
            elif key == "diagnostics":
                self.expect_type(f"{where}.{key}", value, "string")
            else:
                self.expect_type(f"{where}.{key}", value, "number")

    def check_groups(self, where, groups):
        for key in self.schema["groups_required"]:
            if key not in groups:
                self.fail(where, f"missing group subtree '{key}'")
        self.check_tree(where, groups)

    def check_tree(self, where, node):
        """A group-tree node holds optional leaf stats plus nested children."""
        counters_key = self.schema["leaf_counters_key"]
        histograms_key = self.schema["leaf_histograms_key"]
        for key, value in node.items():
            here = f"{where}.{key}"
            if key == counters_key:
                if self.expect_type(here, value, "dict"):
                    for name, count in value.items():
                        if not isinstance(count, int) or isinstance(count, bool):
                            self.fail(f"{here}.{name}", "counter must be an integer")
                        elif count < 0:
                            self.fail(f"{here}.{name}", "counter must be >= 0")
            elif key == histograms_key:
                if self.expect_type(here, value, "dict"):
                    for name, hist in value.items():
                        self.check_histogram(f"{here}.{name}", hist)
            elif self.expect_type(here, value, "dict"):
                self.check_tree(here, value)

    def check_histogram(self, where, hist):
        if not self.expect_type(where, hist, "dict"):
            return
        for key in self.schema["histogram_required"]:
            if key not in hist:
                self.fail(where, f"missing histogram field '{key}'")
        if not isinstance(hist.get("buckets"), list):
            self.fail(f"{where}.buckets", "must be a list")

    def run(self, doc):
        self.check_top(doc)
        for i, point in enumerate(doc.get("points", [])):
            self.check_point(f"$.points[{i}]", point)
        return not self.errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("stats", help="the --stats-json document to validate")
    parser.add_argument(
        "--schema",
        default=os.path.join(os.path.dirname(__file__), "stats_schema.json"),
        help="schema file (default: tools/stats_schema.json)",
    )
    args = parser.parse_args()

    with open(args.schema) as f:
        schema = json.load(f)
    with open(args.stats) as f:
        doc = json.load(f)

    checker = Checker(schema)
    if checker.run(doc):
        points = doc.get("points", [])
        errored = sum(1 for p in points if "error" in p)
        print(
            f"OK: {args.stats} conforms "
            f"({len(points)} points, {errored} error stubs)"
        )
        return 0
    for err in checker.errors:
        print(f"FAIL {err}", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
