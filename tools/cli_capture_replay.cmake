# CLI-level capture -> replay round trip: the replay run's stdout must
# be byte-identical to the execute run it reproduces. Driven as a CMake
# script so the comparison works on hosts without a POSIX shell.
set(trace "${WORK_DIR}/cli_capture_replay.cbtr")
set(flags --workload leela --design b2 --insts 20000 --warmup 5000)

execute_process(
    COMMAND "${COBRA_SIM}" --workload leela --insts 20000 --warmup 5000
            --capture-trace "${trace}"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "capture failed: rc=${rc}")
endif()

execute_process(
    COMMAND "${COBRA_SIM}" ${flags}
    OUTPUT_VARIABLE exec_out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "execute run failed: rc=${rc}")
endif()

execute_process(
    COMMAND "${COBRA_SIM}" --replay-trace "${trace}" --design b2
            --insts 20000 --warmup 5000
    OUTPUT_VARIABLE replay_out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "replay run failed: rc=${rc}")
endif()

if(NOT exec_out STREQUAL replay_out)
    message(FATAL_ERROR "replay stdout differs from execute stdout")
endif()
file(REMOVE "${trace}")
