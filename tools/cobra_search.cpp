/**
 * @file
 * cobra_search — the design-space autopilot CLI (docs/SEARCH.md).
 *
 * Samples a budgeted pool of predictor compositions, prunes it with
 * the functional-feature ridge surrogate, ranks survivors with warp
 * interval sampling, certifies finalists with full detailed runs, and
 * emits the reproducible Pareto-frontier artifact.
 *
 * Exit codes: 0 success, 1 usage/config error.
 */

#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "program/workload.hpp"
#include "search/driver.hpp"

namespace {

void
usage()
{
    std::cout <<
        "cobra_search — budgeted composition search over predictor "
        "designs\n"
        "\n"
        "  --search-seed N      candidate-generation seed (default\n"
        "                       0xC0B7A); the same seed reproduces the\n"
        "                       same frontier byte-for-byte\n"
        "  --pool N             candidate pool size incl. the paper\n"
        "                       anchors (default 32)\n"
        "  --budget-kb N        storage budget in KB (default 0 =\n"
        "                       unlimited)\n"
        "  --budget-um2 X       area budget in um^2 under the FinFET\n"
        "                       proxy (default 0 = unlimited)\n"
        "  --workload NAMES     comma-separated workloads scored by\n"
        "                       every tier (default mcf)\n"
        "  --no-anchors         exclude the paper presets from the pool\n"
        "  --seed-evals N       functional evals fitting the surrogate\n"
        "                       (default 10; >= pool disables pruning)\n"
        "  --survivors N        candidates kept past the surrogate\n"
        "                       prune (default 14)\n"
        "  --warp-survivors N   candidates ranked by warp sampling\n"
        "                       (default 5)\n"
        "  --finalists N        non-anchor candidates certified by\n"
        "                       full detailed runs (default 2)\n"
        "  --trace-branches N   tier-0/1 trace length (default 60000)\n"
        "  --trace-warmup N     unmeasured trace prefix (default 15000)\n"
        "  --warp-insts N       tier-2 run length (default 200000)\n"
        "  --intervals N        tier-2 warp intervals (default 4)\n"
        "  --sample-insts N     tier-2 detailed insts per interval\n"
        "                       (default 0 = whole interval)\n"
        "  --insts N            tier-3 run length (default 400000)\n"
        "  --warmup N           tier-3 warmup (default 120000)\n"
        "  --ridge-lambda X     surrogate L2 penalty (default 1.0)\n"
        "  --jobs N             worker threads (all tiers)\n"
        "  --no-batch-eval      serial per-candidate tier-0/1 evals\n"
        "                       (reference path; same artifact)\n"
        "  --out PATH           write the frontier artifact JSON to\n"
        "                       PATH (default: stdout after the table)\n"
        "  --progress           per-tier progress on stderr\n"
        "  --help\n";
}

std::uint64_t
parseU64(const std::string& flag, const std::string& v)
{
    try {
        std::size_t end = 0;
        const std::uint64_t n = std::stoull(v, &end, 0); // 0x ok
        if (end != v.size())
            throw std::invalid_argument(v);
        return n;
    } catch (const std::exception&) {
        throw std::runtime_error("invalid number for " + flag + ": '" +
                                 v + "'");
    }
}

double
parseDouble(const std::string& flag, const std::string& v)
{
    try {
        std::size_t end = 0;
        const double d = std::stod(v, &end);
        if (end != v.size())
            throw std::invalid_argument(v);
        return d;
    } catch (const std::exception&) {
        throw std::runtime_error("invalid number for " + flag + ": '" +
                                 v + "'");
    }
}

std::vector<std::string>
splitList(const std::string& s)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        const std::size_t comma = s.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? s.size() : comma;
        if (end > start)
            out.push_back(s.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace cobra;

    search::SearchConfig cfg;
    std::string outPath;
    try {
        for (int i = 1; i < argc; ++i) {
            const std::string a = argv[i];
            auto next = [&]() -> std::string {
                if (++i >= argc)
                    throw std::runtime_error("missing value for " + a);
                return argv[i];
            };
            if (a == "--search-seed")
                cfg.seed = parseU64(a, next());
            else if (a == "--pool")
                cfg.pool = static_cast<unsigned>(parseU64(a, next()));
            else if (a == "--budget-kb")
                cfg.budget.storageKb = parseU64(a, next());
            else if (a == "--budget-um2")
                cfg.budget.areaUm2 = parseDouble(a, next());
            else if (a == "--workload")
                cfg.workloads = splitList(next());
            else if (a == "--no-anchors")
                cfg.anchors = false;
            else if (a == "--seed-evals")
                cfg.seedEvals =
                    static_cast<unsigned>(parseU64(a, next()));
            else if (a == "--survivors")
                cfg.functionalSurvivors =
                    static_cast<unsigned>(parseU64(a, next()));
            else if (a == "--warp-survivors")
                cfg.warpSurvivors =
                    static_cast<unsigned>(parseU64(a, next()));
            else if (a == "--finalists")
                cfg.finalists =
                    static_cast<unsigned>(parseU64(a, next()));
            else if (a == "--trace-branches")
                cfg.traceBranches = parseU64(a, next());
            else if (a == "--trace-warmup")
                cfg.traceWarmup = parseU64(a, next());
            else if (a == "--warp-insts")
                cfg.warpInsts = parseU64(a, next());
            else if (a == "--intervals")
                cfg.warpIntervals =
                    static_cast<unsigned>(parseU64(a, next()));
            else if (a == "--sample-insts")
                cfg.warpSampleInsts = parseU64(a, next());
            else if (a == "--insts")
                cfg.detailInsts = parseU64(a, next());
            else if (a == "--warmup")
                cfg.detailWarmup = parseU64(a, next());
            else if (a == "--ridge-lambda")
                cfg.ridgeLambda = parseDouble(a, next());
            else if (a == "--jobs")
                cfg.jobs = static_cast<unsigned>(parseU64(a, next()));
            else if (a == "--no-batch-eval")
                cfg.batchEval = false;
            else if (a == "--out")
                outPath = next();
            else if (a == "--progress")
                cfg.progress = true;
            else if (a == "--help" || a == "-h") {
                usage();
                return 0;
            } else {
                throw std::runtime_error("unknown flag: " + a);
            }
        }
    } catch (const std::exception& e) {
        std::cerr << "cobra_search: " << e.what() << "\n\n";
        usage();
        return 1;
    }

    try {
        prog::WorkloadCache cache;
        const search::SearchResult r = search::runSearch(cfg, cache);

        // Human summary: the certified frontier.
        std::printf("cobra_search: seed %llu, pool %zu, "
                    "%u functional / %u warp / %u detailed evals "
                    "(%u saved by surrogate)\n",
                    static_cast<unsigned long long>(cfg.seed),
                    r.candidates.size(), r.functionalEvals,
                    r.warpEvals, r.detailedEvals, r.evalsSaved);
        std::printf("%-16s %10s %12s %8s %10s %10s\n", "frontier",
                    "accuracy", "area um^2", "latency", "ipc",
                    "mpki");
        for (std::size_t i : r.frontier) {
            const auto& c = r.candidates[i];
            std::printf("%-16s %10.4f %12.1f %8u %10.4f %10.4f\n",
                        c.id.c_str(), c.detail.accuracy, c.areaUm2,
                        c.latency, c.detail.ipc, c.detail.mpki);
        }

        const std::string doc = search::frontierJson(r);
        if (outPath.empty()) {
            std::cout << doc;
        } else {
            std::ofstream out(outPath);
            if (!out)
                throw std::runtime_error("cannot write " + outPath);
            out << doc;
            std::printf("frontier artifact: %s\n", outPath.c_str());
        }
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "cobra_search: " << e.what() << '\n';
        return 1;
    }
}
