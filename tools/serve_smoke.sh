#!/usr/bin/env bash
#
# cobra_serve end-to-end smoke: the CI leg of docs/SERVICE.md's
# robustness claims. Exercises, against a real daemon process:
#
#   1. a mixed spool: a healthy grid, a fault-injected grid, and an
#      invalid request — per-point records, schema-valid result and
#      status documents, explicit rejection;
#   2. graceful drain: SIGTERM mid-run exits 0 with a checkpointed
#      journal and a "stopped" status document;
#   3. crash recovery: kill -9 mid-run, restart on the same spool,
#      and verify the journaled points were republished verbatim
#      rather than re-simulated.
#
# Usage: tools/serve_smoke.sh [path-to-cobra_serve]
set -euo pipefail

SERVE="${1:-build/tools/cobra_serve}"
CHECK="$(dirname "$0")/check_stats_schema.py"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/cobra_serve_smoke.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

say() { printf '\n=== %s ===\n' "$*"; }
die() { printf 'serve_smoke: FAIL: %s\n' "$*" >&2; exit 1; }

submit() { # submit <spool> <name> <json-text>
    printf '%s' "$3" > "$1/incoming/$2.tmp"
    mv "$1/incoming/$2.tmp" "$1/incoming/$2"
}

# ---------------------------------------------------------------------
say "leg 1: mixed spool, --once drain"
S1="$WORK/spool1"
mkdir -p "$S1/incoming"

submit "$S1" healthy.json '{
  "id": "healthy", "client": "ci", "priority": 2,
  "designs": ["tagel", "b2"], "workloads": ["leela"],
  "insts": 30000, "warmup": 5000}'
submit "$S1" faulty.json '{
  "id": "faulty", "client": "ci",
  "designs": ["b2"], "workloads": ["x264"],
  "insts": 30000, "warmup": 5000,
  "fault_rate": 1e-4, "fault_seed": 7}'
# Unknown design: must become an explicit rejection, not silence.
submit "$S1" invalid.json '{
  "id": "invalid", "client": "ci",
  "designs": ["warpcore"], "workloads": ["leela"]}'

"$SERVE" --spool "$S1" --jobs 2 --once --verbose

[ -f "$S1/done/healthy.json" ]    || die "healthy request not retired to done/"
[ -f "$S1/done/faulty.json" ]     || die "faulty request not retired to done/"
[ -f "$S1/failed/invalid.json" ]  || die "invalid request not moved to failed/"

python3 "$CHECK" --kind serve-result "$S1/results/healthy.json"
python3 "$CHECK" --kind serve-result "$S1/results/faulty.json"
python3 "$CHECK" --kind serve-result "$S1/results/invalid.json"
python3 "$CHECK" --kind serve-status "$S1/status.json"

python3 - "$S1" <<'EOF'
import json, sys
root = sys.argv[1]
healthy = json.load(open(f"{root}/results/healthy.json"))
assert healthy["status"] == "ok", healthy["status"]
labels = [p["label"] for p in healthy["points"]]
assert labels == ["TAGE-L/leela", "B2/leela"], labels
assert all(p["status"] == "ok" and p["attempts"] == 1
           for p in healthy["points"])
faulty = json.load(open(f"{root}/results/faulty.json"))
assert faulty["points"][0]["faults_injected"] > 0, "no faults injected"
invalid = json.load(open(f"{root}/results/invalid.json"))
assert invalid["status"] == "rejected", invalid["status"]
assert invalid["reason"] == "invalid_request", invalid["reason"]
assert "design" in invalid["detail"], invalid["detail"]
status = json.load(open(f"{root}/status.json"))
assert status["state"] == "stopped" and status["retired"] == 2, status
counters = status["stats"]["serve"]["counters"]
assert counters["accepted"] == 2 and counters["rejected"] == 1, counters
assert counters["points_ok"] == 3, counters
print("leg 1 OK: 2 retired, 1 rejected, 3 points ok")
EOF

# ---------------------------------------------------------------------
say "leg 2: SIGTERM graceful drain"
S2="$WORK/spool2"
mkdir -p "$S2/incoming"
# Enough queued work that the drain provably interrupts some of it.
for i in 1 2 3 4; do
    submit "$S2" "drain$i.json" '{
      "id": "drain'"$i"'", "client": "ci",
      "designs": ["tagel", "b2", "tourney"], "workloads": ["leela"],
      "insts": 200000, "warmup": 5000}'
done

"$SERVE" --spool "$S2" --jobs 2 --poll-ms 50 &
PID=$!
sleep 2
kill -TERM "$PID"
if ! wait "$PID"; then die "daemon exited non-zero on SIGTERM"; fi

python3 "$CHECK" --kind serve-status "$S2/status.json"
python3 - "$S2" <<'EOF'
import json, sys
status = json.load(open(f"{sys.argv[1]}/status.json"))
assert status["state"] == "stopped", status["state"]
print(f"leg 2 OK: clean drain, retired={status['retired']}, "
      f"parked={status['parked']}")
EOF
[ -s "$S2/journal.log" ] || die "drain left no checkpointed journal"

# ---------------------------------------------------------------------
say "leg 3: kill -9, restart, journal recovery"
S3="$WORK/spool3"
mkdir -p "$S3/incoming"
# A long grid: the hard kill lands while later points still run, so
# the journal holds completed points the restart must NOT redo.
submit "$S3" recover.json '{
  "id": "recover", "client": "ci",
  "designs": ["tagel", "b2", "tourney"],
  "workloads": ["leela", "x264"],
  "insts": 120000, "warmup": 5000}'

"$SERVE" --spool "$S3" --jobs 1 --poll-ms 50 &
PID=$!
# Wait until the journal shows at least one completed point.
for _ in $(seq 1 200); do
    if [ -f "$S3/journal.log" ] \
        && grep -q '"ev": "point"' "$S3/journal.log"; then
        break
    fi
    sleep 0.1
done
grep -q '"ev": "point"' "$S3/journal.log" \
    || die "no point completed before the hard kill"
kill -9 "$PID"
wait "$PID" 2>/dev/null || true

JOURNALED=$(grep -c '"ev": "point"' "$S3/journal.log")
[ -f "$S3/active/recover.json" ] || die "request not left in active/"

"$SERVE" --spool "$S3" --jobs 2 --once --verbose

[ -f "$S3/done/recover.json" ] || die "restart did not retire the request"
python3 "$CHECK" --kind serve-result "$S3/results/recover.json"
python3 - "$S3" "$JOURNALED" <<'EOF'
import json, sys
root, journaled = sys.argv[1], int(sys.argv[2])
doc = json.load(open(f"{root}/results/recover.json"))
assert doc["status"] == "ok", doc["status"]
assert len(doc["points"]) == 6, len(doc["points"])
assert all(p["status"] == "ok" for p in doc["points"])
status = json.load(open(f"{root}/status.json"))
recovered = status["stats"]["serve"]["counters"]["recovered_points"]
assert recovered == journaled, (recovered, journaled)
assert recovered >= 1, "journal recovery replayed nothing"
print(f"leg 3 OK: {recovered} journaled points replayed, "
      f"{6 - recovered} re-run after restart")
EOF

say "serve_smoke: all legs passed"
