/**
 * @file
 * cobra_sim: command-line driver for the COBRA reproduction — run any
 * (design, workload) grid with the §VI options, print the metrics and
 * optional detailed statistics. --design/--workload accept
 * comma-separated lists; the resulting grid runs on the SweepEngine
 * thread pool (--jobs / COBRA_JOBS), with output always printed in
 * submission order so a parallel run is byte-identical to a serial
 * one.
 *
 * Usage:
 *   cobra_sim [--design NAMES] [--design-spec FILES] [--workload NAMES]
 *             [--insts N]
 *             [--warmup N] [--ghist none|repair|replay] [--sfb]
 *             [--serialize] [--audit] [--inject-faults RATE]
 *             [--fault-seed N] [--deadlock-cycles N] [--jobs N]
 *             [--specialize] [--no-specialize]
 *             [--warp] [--intervals N] [--warmup-cycles N]
 *             [--sample-insts N] [--checkpoint-dir PATH] [--progress]
 *             [--json PATH] [--stats-json PATH] [--trace-events PATH]
 *             [--trace-start N] [--trace-cycles N]
 *             [--stats] [--area] [--list]
 *
 * All output flags funnel into sim::OutputConfig (CobraScope), so
 * their interactions are validated in one place and inconsistent
 * combinations exit 2 like any other usage error.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "program/workload.hpp"
#include "sim/core_area.hpp"
#include "sim/design_spec.hpp"
#include "sim/presets.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "trace/replay.hpp"
#include "warp/warp.hpp"

using namespace cobra;

namespace {

/**
 * SIGINT/SIGTERM request a clean interrupt: points already running
 * finish (their results are flushed), unstarted points are skipped,
 * any --json document is still valid (flagged "interrupted": true),
 * and the process exits 130.
 */
std::atomic<bool> g_interrupted{false};

void
onSignal(int)
{
    g_interrupted.store(true, std::memory_order_relaxed);
}

void
usage()
{
    std::cout <<
        "cobra_sim — COBRA predictor-composition simulator\n"
        "\n"
        "  --design NAMES       tourney | b2 | tagel | refbig (default tagel);\n"
        "                       comma-separated list runs a sweep\n"
        "  --design-spec FILES  DesignSpec JSON documents (see\n"
        "                       docs/SEARCH.md); comma-separated list.\n"
        "                       Replaces the preset default; combines\n"
        "                       with an explicit --design\n"
        "  --dump-spec NAME     print a preset's DesignSpec JSON and\n"
        "                       exit (the --design-spec input format)\n"
        "  --workload NAMES     SPECint17 proxy / dhrystone / coremark\n"
        "                       (default leela); comma-separated list\n"
        "                       runs a sweep\n"
        "  --insts N            measured instructions (default 400000)\n"
        "  --warmup N           warmup instructions (default 120000)\n"
        "  --ghist MODE         none | repair | replay (default replay)\n"
        "  --sfb                enable short-forwards-branch predication\n"
        "  --serialize          serialize fetch behind branches (§I)\n"
        "  --audit              verify the §III interface contract at\n"
        "                       runtime (throws on violation)\n"
        "  --inject-faults RATE flip predictor state / drop updates with\n"
        "                       per-event probability RATE\n"
        "  --fault-seed N       fault-injection RNG seed (default 0x5EED)\n"
        "  --deadlock-cycles N  watchdog: abort after N cycles without a\n"
        "                       commit (default 100000)\n"
        "  --jobs N             worker threads for grid runs (default:\n"
        "                       COBRA_JOBS, else hardware concurrency)\n"
        "  --specialize         require the fused (specialized) cycle\n"
        "                       loop; exit 2 if it is unavailable for\n"
        "                       the requested configuration\n"
        "  --no-specialize      force the generic cycle loop (also:\n"
        "                       COBRA_NO_SPECIALIZE=1); results are\n"
        "                       bit-identical either way\n"
        "  --warp               time-parallel sampled simulation: cut\n"
        "                       the run into checkpointed intervals and\n"
        "                       estimate whole-run IPC/MPKI with error\n"
        "                       bars from bounded detailed samples\n"
        "  --intervals N        warp: number of intervals (default 4)\n"
        "  --warmup-cycles N    warp: discarded detailed pipeline\n"
        "                       re-warm prefix per interval (default\n"
        "                       10000 cycles)\n"
        "  --sample-insts N     warp: instructions measured in detail\n"
        "                       per interval (default 0 = the whole\n"
        "                       interval)\n"
        "  --checkpoint-dir P   warp: persist per-interval checkpoints\n"
        "                       under P\n"
        "  --progress           report per-point completion to stderr\n"
        "  --json PATH          also write results as JSON to PATH\n"
        "  --stats-json PATH    write the full stat-group hierarchy as\n"
        "                       JSON to PATH (CobraScope)\n"
        "  --trace-events PATH  write pipeline events as a Chrome\n"
        "                       trace-event file (Perfetto-loadable)\n"
        "  --trace-start N      first traced cycle (default 0)\n"
        "  --trace-cycles N     trace window length in cycles\n"
        "                       (default 0 = unbounded)\n"
        "  --capture-trace P    record the workload's committed\n"
        "                       control-flow stream to P (CBTR trace)\n"
        "                       and exit; no detailed simulation runs\n"
        "  --capture-insts N    capture budget in committed\n"
        "                       instructions (default: warmup + insts)\n"
        "  --replay-trace P     drive the oracle from a captured trace\n"
        "                       instead of regenerating outcomes;\n"
        "                       bit-identical to the execute-mode run\n"
        "                       for the same (workload, seed, flags).\n"
        "                       Without --workload the trace's own\n"
        "                       workload is selected\n"
        "  --stats              dump detailed pipeline statistics\n"
        "  --area               print the predictor/core area breakdown\n"
        "  --list               list designs and workloads\n";
}

/** Load and validate one DesignSpec JSON document. */
sim::DesignSpec
loadSpecFile(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot read design spec: " + path);
    std::ostringstream text;
    text << in.rdbuf();
    return sim::DesignSpec::fromJson(text.str());
}

bpu::GhistRepairMode
parseGhist(const std::string& s)
{
    if (s == "none")
        return bpu::GhistRepairMode::None;
    if (s == "repair")
        return bpu::GhistRepairMode::RepairOnly;
    if (s == "replay")
        return bpu::GhistRepairMode::RepairAndReplay;
    throw std::runtime_error("unknown ghist mode: " + s);
}

std::uint64_t
parseU64(const std::string& flag, const std::string& v)
{
    try {
        std::size_t end = 0;
        const std::uint64_t n = std::stoull(v, &end, 0); // 0x ok
        if (end != v.size())
            throw std::invalid_argument(v);
        return n;
    } catch (const std::exception&) {
        throw std::runtime_error("invalid number for " + flag + ": '" +
                                 v + "'");
    }
}

double
parseDouble(const std::string& flag, const std::string& v)
{
    try {
        std::size_t end = 0;
        const double d = std::stod(v, &end);
        if (end != v.size())
            throw std::invalid_argument(v);
        return d;
    } catch (const std::exception&) {
        throw std::runtime_error("invalid number for " + flag + ": '" +
                                 v + "'");
    }
}

void
printWarpEstimate(const warp::WarpEstimate& est, bool sfb,
                  double fault_rate, bool audit)
{
    TextTable t;
    t.addRow({"metric", "value"});
    auto row = [&t](const std::string& k, const std::string& v) {
        t.beginRow();
        t.cell(k);
        t.cell(v);
    };
    row("instructions", std::to_string(est.estimate.insts));
    row("est cycles", std::to_string(est.estimate.cycles));
    row("est IPC", formatDouble(est.ipc, 3) + " +/- " +
                       formatDouble(est.ipcCi95, 3) + " (95% CI)");
    row("est branch MPKI", formatDouble(est.mpki, 2) + " +/- " +
                               formatDouble(est.mpkiCi95, 2) +
                               " (95% CI)");
    row("accuracy", formatDouble(100 * est.estimate.accuracy(), 2) +
                        "%");
    row("intervals", std::to_string(est.intervals.size()));
    row("ff insts", std::to_string(est.ffInsts));
    row("detailed insts", std::to_string(est.detailedInsts));
    row("detailed cycles",
        std::to_string(est.detailedCycles) + " (warmup " +
            std::to_string(est.warmupCycles) + ")");
    if (sfb)
        row("SFB conversions",
            std::to_string(est.estimate.sfbConversions));
    if (fault_rate > 0.0) {
        row("faults injected",
            std::to_string(est.estimate.faultsInjected));
        row("updates dropped",
            std::to_string(est.estimate.updatesDropped));
    }
    if (audit)
        row("contract checks",
            std::to_string(est.estimate.auditChecks));
    t.print(std::cout);
}

std::vector<std::string>
splitList(const std::string& s)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    if (out.empty())
        throw std::runtime_error("empty list: '" + s + "'");
    return out;
}

int
runMain(int argc, char** argv)
{
    std::string designArg = "tagel";
    bool designSet = false;
    std::string specArg;
    std::string workloadArg = "leela";
    std::uint64_t insts = 400'000;
    std::uint64_t warmup = 120'000;
    std::uint64_t deadlockCycles = 100'000;
    bpu::GhistRepairMode ghist = bpu::GhistRepairMode::RepairAndReplay;
    bool sfb = false, serialize = false;
    bool audit = false;
    double faultRate = 0.0;
    std::uint64_t faultSeed = 0x5EED;
    unsigned jobs = 0; // 0 = SweepEngine default (COBRA_JOBS / hw)
    // COBRA_NO_SPECIALIZE is the environment-wide opt-out (useful for
    // bisecting a whole test/bench invocation); explicit flags win.
    sim::SpecializeMode specMode =
        std::getenv("COBRA_NO_SPECIALIZE") != nullptr
            ? sim::SpecializeMode::Off
            : sim::SpecializeMode::Auto;
    bool warpMode = false;
    bool progress = false;
    warp::WarpConfig wcfg;
    sim::OutputConfig out;
    std::string captureTracePath;
    std::uint64_t captureInsts = 0; // 0 = warmup + insts
    std::string replayTracePath;
    bool workloadSet = false;

    std::vector<sim::DesignSpec> designs;
    std::vector<std::string> workloads;
    try {
        for (int i = 1; i < argc; ++i) {
            const std::string a = argv[i];
            auto next = [&]() -> std::string {
                if (++i >= argc)
                    throw std::runtime_error("missing value for " + a);
                return argv[i];
            };
            if (a == "--design") {
                designArg = next();
                designSet = true;
            }
            else if (a == "--design-spec")
                specArg = next();
            else if (a == "--dump-spec") {
                std::cout << sim::presetSpec(next()).toJson();
                return 0;
            }
            else if (a == "--workload") {
                workloadArg = next();
                workloadSet = true;
            }
            else if (a == "--insts")
                insts = parseU64(a, next());
            else if (a == "--warmup")
                warmup = parseU64(a, next());
            else if (a == "--ghist")
                ghist = parseGhist(next());
            else if (a == "--sfb")
                sfb = true;
            else if (a == "--serialize")
                serialize = true;
            else if (a == "--audit")
                audit = true;
            else if (a == "--inject-faults")
                faultRate = parseDouble(a, next());
            else if (a == "--fault-seed")
                faultSeed = parseU64(a, next());
            else if (a == "--deadlock-cycles")
                deadlockCycles = parseU64(a, next());
            else if (a == "--jobs")
                jobs = static_cast<unsigned>(parseU64(a, next()));
            else if (a == "--specialize")
                specMode = sim::SpecializeMode::Require;
            else if (a == "--no-specialize")
                specMode = sim::SpecializeMode::Off;
            else if (a == "--warp")
                warpMode = true;
            else if (a == "--intervals")
                wcfg.intervals =
                    static_cast<unsigned>(parseU64(a, next()));
            else if (a == "--warmup-cycles")
                wcfg.warmupCycles = parseU64(a, next());
            else if (a == "--sample-insts")
                wcfg.sampleInsts = parseU64(a, next());
            else if (a == "--checkpoint-dir")
                wcfg.checkpointDir = next();
            else if (a == "--progress")
                progress = true;
            else if (a == "--capture-trace")
                captureTracePath = next();
            else if (a == "--capture-insts")
                captureInsts = parseU64(a, next());
            else if (a == "--replay-trace")
                replayTracePath = next();
            else if (a == "--json")
                out.resultsJsonPath = next();
            else if (a == "--stats-json")
                out.statsJsonPath = next();
            else if (a == "--trace-events")
                out.traceEventsPath = next();
            else if (a == "--trace-start")
                out.traceStartCycle = parseU64(a, next());
            else if (a == "--trace-cycles")
                out.traceCycles = parseU64(a, next());
            else if (a == "--stats")
                out.textStats = true;
            else if (a == "--area")
                out.textArea = true;
            else if (a == "--list") {
                std::cout << "designs: tourney b2 tagel refbig\n"
                          << "workloads:";
                for (const auto& w : prog::WorkloadLibrary::all())
                    std::cout << " " << w;
                std::cout << "\n";
                return 0;
            } else if (a == "--help" || a == "-h") {
                usage();
                return 0;
            } else {
                throw std::runtime_error("unknown option: " + a);
            }
        }
        // Preset names and spec files resolve to the same DesignSpec
        // construction path; --design-spec alone replaces the preset
        // default rather than adding to it.
        if (specArg.empty() || designSet)
            for (const std::string& d : splitList(designArg))
                designs.push_back(sim::presetSpec(d));
        if (!specArg.empty())
            for (const std::string& f : splitList(specArg))
                designs.push_back(loadSpecFile(f));
        workloads = splitList(workloadArg);
        if (!captureTracePath.empty()) {
            if (!replayTracePath.empty()) {
                throw std::runtime_error(
                    "--capture-trace cannot be combined with "
                    "--replay-trace");
            }
            if (warpMode) {
                throw std::runtime_error(
                    "--capture-trace cannot be combined with --warp "
                    "(capture runs no detailed simulation)");
            }
            if (workloads.size() != 1) {
                throw std::runtime_error(
                    "--capture-trace records exactly one workload");
            }
        }
        if (!replayTracePath.empty() && workloadSet &&
            workloads.size() != 1) {
            throw std::runtime_error(
                "--replay-trace drives a single workload; drop "
                "--workload to use the trace's own");
        }
        out.validate(); // Bad flag combinations are usage errors.
        if (warpMode) {
            if (out.tracing()) {
                throw std::runtime_error(
                    "--warp cannot be combined with --trace-events "
                    "(pipeline traces are not checkpointed)");
            }
            if (out.textStats || out.textArea) {
                throw std::runtime_error(
                    "--warp does not support --stats/--area (interval "
                    "simulators are transient); use --stats-json");
            }
            wcfg.jobs = jobs;
            wcfg.progress = progress;
            wcfg.validate();
        }
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n\n";
        usage();
        return 2;
    }

    prog::WorkloadCache cache;

    if (!captureTracePath.empty()) {
        // Capture is design-independent: it freezes the committed
        // oracle stream, which only depends on (workload, seed). A
        // malformed path or I/O failure is a structured error
        // (exit 1), not a usage error.
        const prog::Program& program = cache.get(workloads.front());
        const std::uint64_t budget =
            captureInsts != 0 ? captureInsts : warmup + insts;
        const trace::TraceMeta tm =
            trace::captureTrace(program, captureTracePath, budget);
        std::cout << "captured " << tm.recordCount
                  << " control-flow records (" << tm.condCount
                  << " conditional) covering " << tm.sourceInsts
                  << " committed instructions\n"
                  << "workload: " << program.name() << "\n"
                  << "trace:    " << captureTracePath << "\n";
        return 0;
    }

    std::shared_ptr<const trace::DecodedTrace> replayTrace;
    if (!replayTracePath.empty()) {
        // Content-addressed decode: a corrupt/truncated/mismatched
        // file raises guard::CheckpointError here (exit 1).
        replayTrace = cache.getTrace(replayTracePath);
        if (!workloadSet)
            workloads = {replayTrace->meta.name};
    }

    sim::SweepEngine engine(jobs);
    engine.setProgress(progress);
    engine.setStopFlag(&g_interrupted);
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    std::vector<std::string> headers;
    std::vector<sim::DesignSpec> pointDesigns;
    std::vector<sim::SweepPoint> warpJobs;

    for (const std::string& wl : workloads) {
        const prog::Program& program = cache.get(wl);
        for (const sim::DesignSpec& design : designs) {
            // Describe the topology from a throwaway instance; the
            // point builds its own fresh copy on the worker.
            const bpu::Topology topo = sim::buildTopology(design);
            std::ostringstream hdr;
            hdr << "design:   " << design.name << "  ("
                << topo.describe() << ")\n"
                << "workload: " << program.name() << " ("
                << program.size() << " static insts)\n"
                << "ghist:    " << bpu::ghistRepairModeName(ghist)
                << (sfb ? ", SFB on" : "")
                << (serialize ? ", serialized fetch" : "");
            if (audit)
                hdr << ", contract audit on";
            if (faultRate > 0.0) {
                hdr << ", fault rate " << faultRate << " (seed 0x"
                    << std::hex << faultSeed << std::dec << ")";
            }
            // Deliberately NOT echoed in the header: --specialize /
            // --no-specialize must keep stdout byte-identical so the
            // A/B debugging workflow can `cmp` the two runs.
            if (warpMode) {
                hdr << "\nwarp:     " << wcfg.intervals
                    << " intervals, sample ";
                if (wcfg.sampleInsts == 0)
                    hdr << "full";
                else
                    hdr << wcfg.sampleInsts << " insts";
                hdr << ", warmup " << wcfg.warmupCycles << " cycles";
            }
            hdr << "\n\n";

            sim::SimConfig cfg = sim::makeConfig(design);
            cfg.maxInsts = insts;
            cfg.warmupInsts = warmup;
            cfg.frontend.ghistMode = ghist;
            cfg.backend.ghistMode = ghist;
            cfg.backend.sfbEnabled = sfb;
            cfg.frontend.serializeFetch = serialize;
            cfg.deadlockCycles = deadlockCycles;
            cfg.audit = audit;
            cfg.faultRate = faultRate;
            cfg.faultSeed = faultSeed;
            cfg.specialize = specMode;
            cfg.output = out;
            // Like --specialize, --replay-trace is NOT echoed in the
            // header: a replay run's stdout must `cmp` equal to the
            // execute-mode run it reproduces.
            cfg.replayTrace = replayTrace;
            cfg.validate(/*strict=*/true);

            // An explicit --specialize that cannot be honoured is a
            // usage error (exit 2), caught before any point runs.
            if (specMode == sim::SpecializeMode::Require &&
                !sim::specializeAvailable(topo, cfg)) {
                std::cerr << "error: --specialize: the fused loop is "
                             "unavailable for design '"
                          << design.name
                          << "' (unregistered component tuple, or "
                             "--audit/--inject-faults active)\n\n";
                usage();
                return 2;
            }

            sim::SweepPoint pt;
            pt.label = design.name + "/" + program.name();
            pt.topology = [design] {
                return sim::buildTopology(design);
            };
            pt.program = &program;
            pt.cfg = cfg;
            if (warpMode)
                warpJobs.push_back(std::move(pt));
            else
                engine.add(std::move(pt));
            headers.push_back(hdr.str());
            pointDesigns.push_back(design);
        }
    }

    if (warpMode) {
        // Warp points run one at a time: each runWarp drives its own
        // SweepEngine over the intervals, which is where the
        // parallelism (and the --jobs setting) goes.
        bool anyFail = false;
        std::vector<sim::SweepOutcome> outcomes;
        for (std::size_t i = 0; i < warpJobs.size(); ++i) {
            const sim::SweepPoint& pt = warpJobs[i];
            if (i > 0)
                std::cout << "\n";
            std::cout << headers[i];
            sim::SweepOutcome o;
            o.label = pt.label;
            if (g_interrupted.load(std::memory_order_relaxed)) {
                o.error = "interrupted before start";
                o.errorClass = "interrupted";
                std::cerr << "skipped (interrupted): " << pt.label
                          << "\n";
                outcomes.push_back(std::move(o));
                continue;
            }
            const auto t0 = std::chrono::steady_clock::now();
            try {
                warp::WarpConfig w = wcfg;
                if (!wcfg.checkpointDir.empty() && warpJobs.size() > 1)
                    w.checkpointDir =
                        wcfg.checkpointDir + "/" + pt.label;
                const warp::WarpEstimate est =
                    warp::runWarp(*pt.program, pt.topology, pt.cfg, w);
                o.result = est.estimate;
                o.host.simCycles = est.detailedCycles;
                o.host.simInsts = est.detailedInsts;
                if (!out.statsJsonPath.empty()) {
                    o.statsJson = sim::renderPointStats(
                        pt.label, est.estimate,
                        warp::statsGroupsJson(est));
                }
                printWarpEstimate(est, sfb, faultRate, audit);
            } catch (const std::exception& e) {
                o.error = e.what();
                std::cerr << "error: " << o.error << "\n";
                anyFail = true;
            }
            const auto t1 = std::chrono::steady_clock::now();
            o.host.wallSeconds =
                std::chrono::duration<double>(t1 - t0).count();
            outcomes.push_back(std::move(o));
        }
        const unsigned effJobs =
            jobs == 0 ? sim::SweepEngine::defaultJobs() : jobs;
        const bool interrupted =
            g_interrupted.load(std::memory_order_relaxed);
        if (!out.resultsJsonPath.empty()) {
            std::string extra = "\"mode\": \"warp\"";
            if (interrupted)
                extra += ",\n  \"interrupted\": true";
            sim::writeSweepJson(out.resultsJsonPath, "cobra_sim",
                                outcomes, effJobs, extra);
        }
        if (!out.statsJsonPath.empty())
            sim::writeStatsJson(out.statsJsonPath, "cobra_sim",
                                outcomes, effJobs);
        if (interrupted) {
            std::cerr << "interrupted: completed points flushed\n";
            return 130;
        }
        return anyFail ? 1 : 0;
    }

    // Stats/area need the live Simulator, so they are rendered on the
    // worker into per-point text and printed below in order.
    sim::SweepEngine::PostRun postRun;
    if (out.textStats || out.textArea) {
        postRun = [&](std::size_t idx, sim::Simulator& s,
                      const sim::SimResult& r,
                      const sim::SweepPoint& pt, std::ostream& os) {
            if (pt.cfg.output.textStats) {
                os << "\n";
                // The registry covers frontend/backend/bpu, the
                // per-component attribution, caches, and guard.
                s.statRegistry().dump(os);
                if (pt.cfg.audit)
                    os << "guard.audit_checks = " << r.auditChecks
                       << "\n";
            }
            if (pt.cfg.output.textArea) {
                os << "\n";
                const phys::AreaModel model;
                const auto pr = s.bpu().areaReport(model);
                os << "predictor area (um^2):\n";
                for (const auto& item : pr.items)
                    os << "  " << item.name << ": "
                       << formatDouble(item.um2, 0) << "\n";
                const auto cr =
                    sim::coreAreaReport(pointDesigns[idx], model);
                os << "core total: "
                   << formatDouble(cr.total() / 1e6, 3) << " mm^2 (BPU "
                   << formatDouble(100 * pr.total() / cr.total(), 1)
                   << "%)\n";
            }
        };
    }

    const std::vector<sim::SweepOutcome> outcomes = engine.run(postRun);

    bool anyFail = false;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const sim::SweepOutcome& o = outcomes[i];
        if (i > 0)
            std::cout << "\n";
        std::cout << headers[i];
        if (!o.ok()) {
            if (o.errorClass == "interrupted") {
                std::cerr << "skipped (interrupted): " << o.label
                          << "\n";
            } else {
                std::cerr << "error: " << o.error << "\n";
                anyFail = true;
            }
            continue;
        }
        const sim::SimResult& r = o.result;

        TextTable t;
        t.addRow({"metric", "value"});
        auto row = [&t](const std::string& k, const std::string& v) {
            t.beginRow();
            t.cell(k);
            t.cell(v);
        };
        row("instructions", std::to_string(r.insts));
        row("cycles", std::to_string(r.cycles));
        row("IPC", formatDouble(r.ipc(), 3));
        row("cond branches", std::to_string(r.condBranches));
        row("cond mispredicts", std::to_string(r.condMispredicts));
        row("jalr mispredicts", std::to_string(r.jalrMispredicts));
        row("branch MPKI", formatDouble(r.mpki(), 2));
        row("accuracy", formatDouble(100 * r.accuracy(), 2) + "%");
        if (sfb)
            row("SFB conversions", std::to_string(r.sfbConversions));
        if (faultRate > 0.0) {
            row("faults injected", std::to_string(r.faultsInjected));
            row("updates dropped", std::to_string(r.updatesDropped));
        }
        if (audit)
            row("contract checks", std::to_string(r.auditChecks));
        t.print(std::cout);

        if (r.deadlocked) {
            std::cerr << "\nerror: run aborted (no commit progress)\n"
                      << r.diagnostics;
            anyFail = true;
            continue;
        }

        std::cout << o.postRunText;
    }

    const bool interrupted =
        g_interrupted.load(std::memory_order_relaxed);
    if (!out.resultsJsonPath.empty())
        sim::writeSweepJson(out.resultsJsonPath, "cobra_sim", outcomes,
                            engine.jobs(),
                            interrupted ? "\"interrupted\": true" : "");
    if (!out.statsJsonPath.empty())
        sim::writeStatsJson(out.statsJsonPath, "cobra_sim", outcomes,
                            engine.jobs());
    if (!out.traceEventsPath.empty())
        sim::writeTraceEvents(out.traceEventsPath, outcomes);

    if (interrupted) {
        std::cerr << "interrupted: completed points flushed\n";
        return 130;
    }
    return anyFail ? 1 : 0;
}

} // namespace

int
main(int argc, char** argv)
{
    try {
        return runMain(argc, argv);
    } catch (const guard::ContractViolation& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    } catch (const guard::DeadlockError& e) {
        std::cerr << "error: " << e.what() << "\n" << e.postMortem();
        return 1;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
