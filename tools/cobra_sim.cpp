/**
 * @file
 * cobra_sim: command-line driver for the COBRA reproduction — run any
 * (design, workload) pair with the §VI options, print the metrics and
 * optional detailed statistics.
 *
 * Usage:
 *   cobra_sim [--design NAME] [--workload NAME] [--insts N]
 *             [--warmup N] [--ghist none|repair|replay] [--sfb]
 *             [--serialize] [--audit] [--inject-faults RATE]
 *             [--fault-seed N] [--deadlock-cycles N] [--stats]
 *             [--area] [--list]
 */

#include <cstring>
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "program/workload.hpp"
#include "sim/core_area.hpp"
#include "sim/presets.hpp"
#include "sim/simulator.hpp"

using namespace cobra;

namespace {

void
usage()
{
    std::cout <<
        "cobra_sim — COBRA predictor-composition simulator\n"
        "\n"
        "  --design NAME        tourney | b2 | tagel | refbig (default tagel)\n"
        "  --workload NAME      SPECint17 proxy / dhrystone / coremark\n"
        "                       (default leela)\n"
        "  --insts N            measured instructions (default 400000)\n"
        "  --warmup N           warmup instructions (default 120000)\n"
        "  --ghist MODE         none | repair | replay (default replay)\n"
        "  --sfb                enable short-forwards-branch predication\n"
        "  --serialize          serialize fetch behind branches (§I)\n"
        "  --audit              verify the §III interface contract at\n"
        "                       runtime (throws on violation)\n"
        "  --inject-faults RATE flip predictor state / drop updates with\n"
        "                       per-event probability RATE\n"
        "  --fault-seed N       fault-injection RNG seed (default 0x5EED)\n"
        "  --deadlock-cycles N  watchdog: abort after N cycles without a\n"
        "                       commit (default 100000)\n"
        "  --stats              dump detailed pipeline statistics\n"
        "  --area               print the predictor/core area breakdown\n"
        "  --list               list designs and workloads\n";
}

sim::Design
parseDesign(const std::string& s)
{
    if (s == "tourney")
        return sim::Design::Tourney;
    if (s == "b2")
        return sim::Design::B2;
    if (s == "tagel")
        return sim::Design::TageL;
    if (s == "refbig")
        return sim::Design::RefBig;
    throw std::runtime_error("unknown design: " + s);
}

bpu::GhistRepairMode
parseGhist(const std::string& s)
{
    if (s == "none")
        return bpu::GhistRepairMode::None;
    if (s == "repair")
        return bpu::GhistRepairMode::RepairOnly;
    if (s == "replay")
        return bpu::GhistRepairMode::RepairAndReplay;
    throw std::runtime_error("unknown ghist mode: " + s);
}

std::uint64_t
parseU64(const std::string& flag, const std::string& v)
{
    try {
        std::size_t end = 0;
        const std::uint64_t n = std::stoull(v, &end, 0); // 0x ok
        if (end != v.size())
            throw std::invalid_argument(v);
        return n;
    } catch (const std::exception&) {
        throw std::runtime_error("invalid number for " + flag + ": '" +
                                 v + "'");
    }
}

double
parseDouble(const std::string& flag, const std::string& v)
{
    try {
        std::size_t end = 0;
        const double d = std::stod(v, &end);
        if (end != v.size())
            throw std::invalid_argument(v);
        return d;
    } catch (const std::exception&) {
        throw std::runtime_error("invalid number for " + flag + ": '" +
                                 v + "'");
    }
}

int
runMain(int argc, char** argv)
{
    sim::Design design = sim::Design::TageL;
    std::string workload = "leela";
    std::uint64_t insts = 400'000;
    std::uint64_t warmup = 120'000;
    std::uint64_t deadlockCycles = 100'000;
    bpu::GhistRepairMode ghist = bpu::GhistRepairMode::RepairAndReplay;
    bool sfb = false, serialize = false, stats = false, area = false;
    bool audit = false;
    double faultRate = 0.0;
    std::uint64_t faultSeed = 0x5EED;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string a = argv[i];
            auto next = [&]() -> std::string {
                if (++i >= argc)
                    throw std::runtime_error("missing value for " + a);
                return argv[i];
            };
            if (a == "--design")
                design = parseDesign(next());
            else if (a == "--workload")
                workload = next();
            else if (a == "--insts")
                insts = parseU64(a, next());
            else if (a == "--warmup")
                warmup = parseU64(a, next());
            else if (a == "--ghist")
                ghist = parseGhist(next());
            else if (a == "--sfb")
                sfb = true;
            else if (a == "--serialize")
                serialize = true;
            else if (a == "--audit")
                audit = true;
            else if (a == "--inject-faults")
                faultRate = parseDouble(a, next());
            else if (a == "--fault-seed")
                faultSeed = parseU64(a, next());
            else if (a == "--deadlock-cycles")
                deadlockCycles = parseU64(a, next());
            else if (a == "--stats")
                stats = true;
            else if (a == "--area")
                area = true;
            else if (a == "--list") {
                std::cout << "designs: tourney b2 tagel refbig\n"
                          << "workloads:";
                for (const auto& w : prog::WorkloadLibrary::all())
                    std::cout << " " << w;
                std::cout << "\n";
                return 0;
            } else if (a == "--help" || a == "-h") {
                usage();
                return 0;
            } else {
                throw std::runtime_error("unknown option: " + a);
            }
        }
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n\n";
        usage();
        return 2;
    }

    const prog::Program program =
        prog::buildWorkload(prog::WorkloadLibrary::profile(workload));

    bpu::Topology topo = sim::buildTopology(design);
    std::cout << "design:   " << sim::designName(design) << "  ("
              << topo.describe() << ")\n"
              << "workload: " << program.name() << " ("
              << program.size() << " static insts)\n"
              << "ghist:    " << bpu::ghistRepairModeName(ghist)
              << (sfb ? ", SFB on" : "")
              << (serialize ? ", serialized fetch" : "");
    if (audit)
        std::cout << ", contract audit on";
    if (faultRate > 0.0) {
        std::cout << ", fault rate " << faultRate << " (seed 0x"
                  << std::hex << faultSeed << std::dec << ")";
    }
    std::cout << "\n\n";

    sim::SimConfig cfg = sim::makeConfig(design);
    cfg.maxInsts = insts;
    cfg.warmupInsts = warmup;
    cfg.frontend.ghistMode = ghist;
    cfg.backend.ghistMode = ghist;
    cfg.backend.sfbEnabled = sfb;
    cfg.frontend.serializeFetch = serialize;
    cfg.deadlockCycles = deadlockCycles;
    cfg.audit = audit;
    cfg.faultRate = faultRate;
    cfg.faultSeed = faultSeed;
    cfg.validate(/*strict=*/true);

    sim::Simulator s(program, std::move(topo), cfg);
    const sim::SimResult r = s.run();

    TextTable t;
    t.addRow({"metric", "value"});
    auto row = [&t](const std::string& k, const std::string& v) {
        t.beginRow();
        t.cell(k);
        t.cell(v);
    };
    row("instructions", std::to_string(r.insts));
    row("cycles", std::to_string(r.cycles));
    row("IPC", formatDouble(r.ipc(), 3));
    row("cond branches", std::to_string(r.condBranches));
    row("cond mispredicts", std::to_string(r.condMispredicts));
    row("jalr mispredicts", std::to_string(r.jalrMispredicts));
    row("branch MPKI", formatDouble(r.mpki(), 2));
    row("accuracy", formatDouble(100 * r.accuracy(), 2) + "%");
    if (sfb)
        row("SFB conversions", std::to_string(r.sfbConversions));
    if (faultRate > 0.0) {
        row("faults injected", std::to_string(r.faultsInjected));
        row("updates dropped", std::to_string(r.updatesDropped));
    }
    if (audit)
        row("contract checks", std::to_string(r.auditChecks));
    t.print(std::cout);

    if (r.deadlocked) {
        std::cerr << "\nerror: run aborted (no commit progress)\n"
                  << r.diagnostics;
        return 1;
    }

    if (stats) {
        std::cout << "\n";
        s.frontend().stats().dump(std::cout);
        s.backend().stats().dump(std::cout);
        s.bpu().stats().dump(std::cout);
        std::cout << "caches.l1i.misses = "
                  << s.caches().l1i().misses() << "\n"
                  << "caches.l1d.misses = "
                  << s.caches().l1d().misses() << "\n"
                  << "caches.l2.misses = " << s.caches().l2().misses()
                  << "\n";
        if (faultRate > 0.0) {
            const auto& fe = s.faultEngine();
            std::cout << "guard.table_faults = " << fe.tableFaults()
                      << "\n"
                      << "guard.output_faults = " << fe.outputFaults()
                      << "\n"
                      << "guard.updates_dropped = "
                      << fe.droppedUpdates() << "\n";
        }
        if (audit)
            std::cout << "guard.audit_checks = " << r.auditChecks
                      << "\n";
    }

    if (area) {
        std::cout << "\n";
        const phys::AreaModel model;
        const auto pr = s.bpu().areaReport(model);
        std::cout << "predictor area (um^2):\n";
        for (const auto& item : pr.items)
            std::cout << "  " << item.name << ": "
                      << formatDouble(item.um2, 0) << "\n";
        const auto cr = sim::coreAreaReport(design, model);
        std::cout << "core total: " << formatDouble(cr.total() / 1e6, 3)
                  << " mm^2 (BPU "
                  << formatDouble(100 * pr.total() / cr.total(), 1)
                  << "%)\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    try {
        return runMain(argc, argv);
    } catch (const guard::ContractViolation& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    } catch (const guard::DeadlockError& e) {
        std::cerr << "error: " << e.what() << "\n" << e.postMortem();
        return 1;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
