/**
 * @file
 * cobra_sim: command-line driver for the COBRA reproduction — run any
 * (design, workload) pair with the §VI options, print the metrics and
 * optional detailed statistics.
 *
 * Usage:
 *   cobra_sim [--design NAME] [--workload NAME] [--insts N]
 *             [--warmup N] [--ghist none|repair|replay] [--sfb]
 *             [--serialize] [--stats] [--list]
 */

#include <cstring>
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "program/workload.hpp"
#include "sim/core_area.hpp"
#include "sim/presets.hpp"
#include "sim/simulator.hpp"

using namespace cobra;

namespace {

void
usage()
{
    std::cout <<
        "cobra_sim — COBRA predictor-composition simulator\n"
        "\n"
        "  --design NAME     tourney | b2 | tagel | refbig (default tagel)\n"
        "  --workload NAME   SPECint17 proxy / dhrystone / coremark\n"
        "                    (default leela)\n"
        "  --insts N         measured instructions (default 400000)\n"
        "  --warmup N        warmup instructions (default 120000)\n"
        "  --ghist MODE      none | repair | replay (default replay)\n"
        "  --sfb             enable short-forwards-branch predication\n"
        "  --serialize       serialize fetch behind branches (§I)\n"
        "  --stats           dump detailed pipeline statistics\n"
        "  --area            print the predictor/core area breakdown\n"
        "  --list            list designs and workloads\n";
}

sim::Design
parseDesign(const std::string& s)
{
    if (s == "tourney")
        return sim::Design::Tourney;
    if (s == "b2")
        return sim::Design::B2;
    if (s == "tagel")
        return sim::Design::TageL;
    if (s == "refbig")
        return sim::Design::RefBig;
    throw std::runtime_error("unknown design: " + s);
}

bpu::GhistRepairMode
parseGhist(const std::string& s)
{
    if (s == "none")
        return bpu::GhistRepairMode::None;
    if (s == "repair")
        return bpu::GhistRepairMode::RepairOnly;
    if (s == "replay")
        return bpu::GhistRepairMode::RepairAndReplay;
    throw std::runtime_error("unknown ghist mode: " + s);
}

} // namespace

int
main(int argc, char** argv)
{
    sim::Design design = sim::Design::TageL;
    std::string workload = "leela";
    std::uint64_t insts = 400'000;
    std::uint64_t warmup = 120'000;
    bpu::GhistRepairMode ghist = bpu::GhistRepairMode::RepairAndReplay;
    bool sfb = false, serialize = false, stats = false, area = false;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string a = argv[i];
            auto next = [&]() -> std::string {
                if (++i >= argc)
                    throw std::runtime_error("missing value for " + a);
                return argv[i];
            };
            if (a == "--design")
                design = parseDesign(next());
            else if (a == "--workload")
                workload = next();
            else if (a == "--insts")
                insts = std::stoull(next());
            else if (a == "--warmup")
                warmup = std::stoull(next());
            else if (a == "--ghist")
                ghist = parseGhist(next());
            else if (a == "--sfb")
                sfb = true;
            else if (a == "--serialize")
                serialize = true;
            else if (a == "--stats")
                stats = true;
            else if (a == "--area")
                area = true;
            else if (a == "--list") {
                std::cout << "designs: tourney b2 tagel refbig\n"
                          << "workloads:";
                for (const auto& w : prog::WorkloadLibrary::all())
                    std::cout << " " << w;
                std::cout << "\n";
                return 0;
            } else if (a == "--help" || a == "-h") {
                usage();
                return 0;
            } else {
                throw std::runtime_error("unknown option: " + a);
            }
        }
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n\n";
        usage();
        return 2;
    }

    const prog::Program program =
        prog::buildWorkload(prog::WorkloadLibrary::profile(workload));

    bpu::Topology topo = sim::buildTopology(design);
    std::cout << "design:   " << sim::designName(design) << "  ("
              << topo.describe() << ")\n"
              << "workload: " << program.name() << " ("
              << program.size() << " static insts)\n"
              << "ghist:    " << bpu::ghistRepairModeName(ghist)
              << (sfb ? ", SFB on" : "")
              << (serialize ? ", serialized fetch" : "") << "\n\n";

    sim::SimConfig cfg = sim::makeConfig(design);
    cfg.maxInsts = insts;
    cfg.warmupInsts = warmup;
    cfg.frontend.ghistMode = ghist;
    cfg.backend.ghistMode = ghist;
    cfg.backend.sfbEnabled = sfb;
    cfg.frontend.serializeFetch = serialize;

    sim::Simulator s(program, std::move(topo), cfg);
    const sim::SimResult r = s.run();

    TextTable t;
    t.addRow({"metric", "value"});
    auto row = [&t](const std::string& k, const std::string& v) {
        t.beginRow();
        t.cell(k);
        t.cell(v);
    };
    row("instructions", std::to_string(r.insts));
    row("cycles", std::to_string(r.cycles));
    row("IPC", formatDouble(r.ipc(), 3));
    row("cond branches", std::to_string(r.condBranches));
    row("cond mispredicts", std::to_string(r.condMispredicts));
    row("jalr mispredicts", std::to_string(r.jalrMispredicts));
    row("branch MPKI", formatDouble(r.mpki(), 2));
    row("accuracy", formatDouble(100 * r.accuracy(), 2) + "%");
    if (sfb)
        row("SFB conversions", std::to_string(r.sfbConversions));
    t.print(std::cout);

    if (r.deadlocked) {
        std::cerr << "\nwarning: run aborted (no commit progress)\n";
        return 1;
    }

    if (stats) {
        std::cout << "\n";
        s.frontend().stats().dump(std::cout);
        s.backend().stats().dump(std::cout);
        s.bpu().stats().dump(std::cout);
        std::cout << "caches.l1i.misses = "
                  << s.caches().l1i().misses() << "\n"
                  << "caches.l1d.misses = "
                  << s.caches().l1d().misses() << "\n"
                  << "caches.l2.misses = " << s.caches().l2().misses()
                  << "\n";
    }

    if (area) {
        std::cout << "\n";
        const phys::AreaModel model;
        const auto pr = s.bpu().areaReport(model);
        std::cout << "predictor area (um^2):\n";
        for (const auto& item : pr.items)
            std::cout << "  " << item.name << ": "
                      << formatDouble(item.um2, 0) << "\n";
        const auto cr = sim::coreAreaReport(design, model);
        std::cout << "core total: " << formatDouble(cr.total() / 1e6, 3)
                  << " mm^2 (BPU "
                  << formatDouble(100 * pr.total() / cr.total(), 1)
                  << "%)\n";
    }
    return 0;
}
