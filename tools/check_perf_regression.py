#!/usr/bin/env python3
"""Host-throughput perf-regression gate (CI and local).

Joins a fresh ``bench_host_throughput`` report against the committed
pre-optimisation baseline by point label, computes the geomean
speedup, and fails when it has regressed more than ``--threshold``
(default 15%) below the expected geomean — by default the
``geomean_speedup`` recorded in the committed report from the last
refresh (``bench_results/bench_host_throughput.json``), overridable
with ``--expected-geomean`` for hosts much faster or slower than the
reference container.

The gate is additionally per design: each point's speedup is compared
against the same point's ``speedup`` recorded in the committed report,
with its own (wider, noise-tolerant) ``--point-threshold`` allowance.
A specialized-loop regression on one topology therefore cannot hide
behind wins on the others, even when the geomean still clears.

Stdlib only; exit code 0 = pass, 1 = regression, 2 = bad input.

Usage:
    python3 tools/check_perf_regression.py \
        --fresh bench_results/bench_host_throughput.json \
        [--baseline bench_results/BASELINE_host_throughput.json] \
        [--committed <last committed report>] \
        [--threshold 0.15] [--expected-geomean N]

Updating the baselines after intentional perf work is a manual step:
see bench_results/README.md for the runbook.
"""

import argparse
import json
import math
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"error: cannot read {path}: {e}")


def points_by_label(doc, path):
    pts = {}
    for p in doc.get("points", []):
        label = p.get("label")
        kcps = p.get("kilocycles_per_sec", 0.0)
        if not label or not isinstance(kcps, (int, float)) or kcps <= 0:
            sys.exit(f"error: {path}: malformed point {p!r}")
        pts[label] = float(kcps)
    if not pts:
        sys.exit(f"error: {path}: no points")
    return pts


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--fresh", required=True,
                    help="JSON written by a fresh bench_host_throughput run")
    ap.add_argument("--baseline",
                    default="bench_results/BASELINE_host_throughput.json",
                    help="committed pre-optimisation baseline")
    ap.add_argument("--committed",
                    help="committed report whose geomean_speedup is the "
                         "expectation (default: the baseline of --fresh's "
                         "path under bench_results/)")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="max allowed fractional regression (default 0.15)")
    ap.add_argument("--point-threshold", type=float, default=0.25,
                    help="max allowed fractional per-design regression "
                         "vs the committed report's per-point speedup "
                         "(default 0.25; wider than --threshold because "
                         "single points are noisier than the geomean)")
    ap.add_argument("--expected-geomean", type=float,
                    help="override the expected geomean speedup")
    args = ap.parse_args()

    fresh = points_by_label(load(args.fresh), args.fresh)
    base = points_by_label(load(args.baseline), args.baseline)

    expected = args.expected_geomean
    expected_points = {}
    committed = args.committed or \
        "bench_results/bench_host_throughput.json"
    try:
        with open(committed, "r", encoding="utf-8") as f:
            committed_doc = json.load(f)
    except (OSError, ValueError) as e:
        if expected is None:
            sys.exit(f"error: cannot read {committed}: {e}")
        committed_doc = {}  # explicit expectation; per-point gate off
    for p in committed_doc.get("points", []):
        s = p.get("speedup", 0.0)
        if p.get("label") and isinstance(s, (int, float)) and s > 0:
            expected_points[p["label"]] = float(s)
    if expected is None:
        expected = committed_doc.get("geomean_speedup", 0.0)
        if not isinstance(expected, (int, float)) or expected <= 0:
            sys.exit(f"error: {committed}: no usable geomean_speedup "
                     "(pass --expected-geomean)")

    missing = sorted(set(base) - set(fresh))
    if missing:
        sys.exit(f"error: {args.fresh}: missing baseline points "
                 f"{missing} — the gate must cover every point")

    log_sum = 0.0
    point_failures = []
    print(f"{'point':24} {'kcycles/s':>10} {'baseline':>10} "
          f"{'speedup':>8} {'floor':>8}")
    for label in sorted(base):
        speedup = fresh[label] / base[label]
        log_sum += math.log(speedup)
        want = expected_points.get(label)
        point_floor = (1.0 - args.point_threshold) * want if want else None
        floor_txt = f"{point_floor:7.2f}x" if point_floor else f"{'-':>8}"
        print(f"{label:24} {fresh[label]:10.1f} {base[label]:10.1f} "
              f"{speedup:7.2f}x {floor_txt}")
        if point_floor is not None and speedup < point_floor:
            point_failures.append(
                f"  {label}: {speedup:.2f}x < floor {point_floor:.2f}x "
                f"(committed {want:.2f}x, "
                f"{args.point_threshold:.0%} allowance)")
    geomean = math.exp(log_sum / len(base))
    floor = (1.0 - args.threshold) * expected

    print(f"\ngeomean speedup: {geomean:.3f}x "
          f"(expected {expected:.3f}x, floor {floor:.3f}x "
          f"= {args.threshold:.0%} regression allowance)")
    failed = False
    if point_failures:
        print("PER-DESIGN REGRESSION: these points fell below their own "
              "floor (a loss on one topology cannot hide behind wins "
              "elsewhere):\n" + "\n".join(point_failures),
              file=sys.stderr)
        failed = True
    if geomean < floor:
        print("PERF REGRESSION: geomean speedup fell below the floor — "
              "either fix the regression or follow the baseline-update "
              "runbook in bench_results/README.md", file=sys.stderr)
        failed = True
    if failed:
        return 1
    print("OK: throughput within the regression allowance "
          "(geomean and every per-design point)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
