#!/usr/bin/env bash
# Regenerate every committed bench_results/ artifact from a release
# build. Run from anywhere; pass the build directory as $1 (default:
# ./build relative to the repo root). See bench_results/README.md for
# what each artifact is and when it must be refreshed.
#
#   cmake -B build -DCMAKE_BUILD_TYPE=Release && cmake --build build
#   tools/refresh_bench_results.sh build
#
# Each harness's stdout (the paper-style tables and [SHAPE] checks)
# becomes bench_results/<name>.txt; the harnesses themselves write the
# machine-readable bench_results/<name>.json side-car. progress.log
# records one "name rc=N" line per harness so a partial refresh is
# visible in review.
#
# Artifacts are written atomically (temp + mv): a failing or killed
# harness never leaves a truncated .txt behind to be committed by
# mistake — the previous artifact survives untouched.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

# A harness killed mid-write (SIGINT, OOM) skips run_harness's own
# rm -f; sweep any orphaned temp files on every exit path so a stray
# *.txt.tmp can never be committed by mistake.
trap 'rm -f bench_results/*.tmp' EXIT INT TERM

if [ ! -x "$BUILD/bench/bench_table1_storage" ]; then
    echo "error: $BUILD/bench does not contain built harnesses" >&2
    echo "       (cmake --build $BUILD first)" >&2
    exit 2
fi

HARNESSES="
bench_table1_storage
bench_table2_config
bench_fig2_timing
bench_fig4_topologies
bench_fig7_pipelines
bench_fig8_predictor_area
bench_fig9_core_area
bench_fig10_specint
bench_intro_serialization
bench_via_tage_latency
bench_vib_ghist_repair
bench_vic_sfb
bench_ablations
bench_trace_vs_execution
bench_energy
bench_warp
bench_search
"

mkdir -p bench_results
: > bench_results/progress.log

# run_harness NAME [CAPTURE]: run one harness, recording its rc in
# progress.log; with CAPTURE=1 its stdout is published atomically as
# bench_results/NAME.txt on success only.
run_harness() {
    local b="$1" capture="${2:-1}" rc=0
    echo "== $b =="
    if [ "$capture" -eq 1 ]; then
        "$BUILD/bench/$b" > "bench_results/$b.txt.tmp" || rc=$?
        if [ "$rc" -eq 0 ]; then
            mv "bench_results/$b.txt.tmp" "bench_results/$b.txt"
        else
            rm -f "bench_results/$b.txt.tmp"
        fi
    else
        "$BUILD/bench/$b" || rc=$?
    fi
    echo "$b rc=$rc" >> bench_results/progress.log
    return "$rc"
}

fails=0
for b in $HARNESSES; do
    run_harness "$b" 1 || fails=$((fails + 1))
done

# Host-throughput, trace-replay and batch-eval gates: JSON only
# (wall-clock tables are host-specific noise in review diffs, the
# JSON carries the comparable numbers).
run_harness bench_host_throughput 0 || fails=$((fails + 1))
run_harness bench_trace_replay 0 || fails=$((fails + 1))
run_harness bench_batch_eval 0 || fails=$((fails + 1))

echo "ALL-DONE" >> bench_results/progress.log
echo
grep -c "SHAPE PASS" bench_results/*.txt /dev/null \
    | sed 's/^bench_results\///' || true
echo
if [ "$fails" -ne 0 ]; then
    echo "$fails harness(es) failed — see bench_results/progress.log" >&2
    exit 1
fi
echo "all harnesses passed; review the bench_results/ diff and commit"
