# CLI-level DesignSpec round trip: a preset's spec dumped with
# --dump-spec and fed back via --design-spec must reproduce the bare
# preset-name run byte for byte (metrics + full --stats dump). Driven
# as a CMake script so the comparison works on hosts without a POSIX
# shell.
set(spec "${WORK_DIR}/cli_design_spec.json")
set(flags --workload leela --insts 20000 --warmup 5000 --stats)

execute_process(
    COMMAND "${COBRA_SIM}" --dump-spec tagel
    OUTPUT_FILE "${spec}" RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "--dump-spec tagel failed: rc=${rc}")
endif()

execute_process(
    COMMAND "${COBRA_SIM}" --design tagel ${flags}
    OUTPUT_VARIABLE preset_out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "preset run failed: rc=${rc}")
endif()

execute_process(
    COMMAND "${COBRA_SIM}" --design-spec "${spec}" ${flags}
    OUTPUT_VARIABLE spec_out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "--design-spec run failed: rc=${rc}")
endif()

if(NOT preset_out STREQUAL spec_out)
    message(FATAL_ERROR "--design-spec stdout differs from --design")
endif()
file(REMOVE "${spec}")
