/**
 * @file
 * cobra_serve: a long-lived, fault-tolerant sweep-evaluation daemon.
 * Clients drop JSON sweep-request documents into `<spool>/incoming/`
 * (write-then-rename); the daemon admits them through priority/quota
 * control, executes each (design x workload) grid on the SweepEngine
 * pool with per-point isolation, retries, and wall-clock watchdogs,
 * and publishes one result document per request under
 * `<spool>/results/` plus a continuously-refreshed
 * `<spool>/status.json`. See docs/SERVICE.md for schemas, the failure
 * taxonomy, and the drain/restart runbook.
 *
 * Usage:
 *   cobra_serve --spool DIR [--jobs N] [--once] [--poll-ms N]
 *               [--max-queue N] [--max-points N] [--client-quota N]
 *               [--backoff-ms N] [--no-specialize] [--verbose]
 *
 * Signals: SIGTERM/SIGINT start a graceful drain — in-flight points
 * finish, partial results flush, the journal checkpoints, and undone
 * work stays in `active/` for the next daemon. A second signal (or
 * kill -9) is also safe: recovery replays the journal on restart.
 */

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "serve/daemon.hpp"

namespace {

std::atomic<bool> g_stop{false};

void
onSignal(int)
{
    g_stop.store(true, std::memory_order_relaxed);
}

void
usage()
{
    std::cout <<
        "cobra_serve — fault-tolerant sweep-evaluation daemon\n"
        "\n"
        "  --spool DIR        spool root (default ./spool); creates\n"
        "                     incoming/ active/ done/ failed/ results/\n"
        "                     warm/ plus journal.log and status.json\n"
        "  --jobs N           sweep worker threads (default: COBRA_JOBS,\n"
        "                     else hardware concurrency)\n"
        "  --once             drain the spool and exit (no watch loop)\n"
        "  --poll-ms N        incoming poll period when idle\n"
        "                     (default 200)\n"
        "  --max-queue N      max admitted-but-not-running requests\n"
        "                     (default 8); a full queue sheds the\n"
        "                     lowest-priority entry for a higher one\n"
        "  --max-points N     max grid points per request (default 64)\n"
        "  --client-quota N   max queued points per client (default 128)\n"
        "  --backoff-ms N     transient-failure retry backoff base\n"
        "                     (default 50; doubles per attempt)\n"
        "  --no-specialize    force the generic cycle loop on every\n"
        "                     point (also: COBRA_NO_SPECIALIZE=1);\n"
        "                     results are bit-identical either way\n"
        "  --verbose          log admissions/retirements to stderr\n";
}

std::uint64_t
parseU64(const std::string& flag, const std::string& v)
{
    try {
        std::size_t end = 0;
        const std::uint64_t n = std::stoull(v, &end, 0);
        if (end != v.size())
            throw std::invalid_argument(v);
        return n;
    } catch (const std::exception&) {
        throw std::runtime_error("invalid number for " + flag + ": '" +
                                 v + "'");
    }
}

} // namespace

int
main(int argc, char** argv)
{
    cobra::serve::ServeConfig cfg;
    if (std::getenv("COBRA_NO_SPECIALIZE") != nullptr)
        cfg.noSpecialize = true;
    try {
        for (int i = 1; i < argc; ++i) {
            const std::string a = argv[i];
            auto next = [&]() -> std::string {
                if (++i >= argc)
                    throw std::runtime_error("missing value for " + a);
                return argv[i];
            };
            if (a == "--spool")
                cfg.spoolRoot = next();
            else if (a == "--jobs")
                cfg.jobs = static_cast<unsigned>(parseU64(a, next()));
            else if (a == "--once")
                cfg.once = true;
            else if (a == "--poll-ms")
                cfg.pollMs = parseU64(a, next());
            else if (a == "--max-queue")
                cfg.maxQueue = parseU64(a, next());
            else if (a == "--max-points")
                cfg.maxPointsPerRequest = parseU64(a, next());
            else if (a == "--client-quota")
                cfg.maxPointsPerClient = parseU64(a, next());
            else if (a == "--backoff-ms")
                cfg.backoffBaseMs = parseU64(a, next());
            else if (a == "--no-specialize")
                cfg.noSpecialize = true;
            else if (a == "--verbose")
                cfg.verbose = true;
            else if (a == "--help" || a == "-h") {
                usage();
                return 0;
            } else {
                throw std::runtime_error("unknown option: " + a);
            }
        }
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n\n";
        usage();
        return 2;
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    try {
        cobra::serve::Daemon daemon(cfg);
        const std::size_t retired = daemon.run(g_stop);
        std::cerr << "cobra_serve: "
                  << (g_stop.load() ? "drained" : "done") << ", "
                  << retired << " request(s) retired\n";
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
